package monitor

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"

	"csecg/internal/blackbox"
	"csecg/internal/coordinator"
	"csecg/internal/telemetry"
)

// Server is the observability HTTP plane. Sessions are attached as the
// fleet spins up streams; the handler serves Prometheus text on
// /metrics, liveness on /healthz, readiness on /readyz, and per-stream
// JSON on /sessions.
type Server struct {
	clock   telemetry.Clock
	startNs int64

	// Sessions live in an append-only slice so every export walks them
	// in attach order — no map iteration anywhere near the wire format.
	mu       sync.Mutex
	sessions []*Session
	draining bool

	// inflight tracks requests currently being served, so shutdown can
	// wait for scrapes that were on the wire when the drain began.
	inflight sync.WaitGroup

	// testHookRequest, when set, runs at the start of every request —
	// the test seam that holds a scrape in flight across BeginDrain.
	testHookRequest func(path string)
}

// NewServer builds a server. clock (nil → telemetry.WallClock) stamps
// uptime; inject a ManualClock in tests.
func NewServer(clock telemetry.Clock) *Server {
	if clock == nil {
		clock = telemetry.WallClock{}
	}
	return &Server{clock: clock, startNs: clock.Now()}
}

// Attach registers a session with the plane.
func (s *Server) Attach(ses *Session) {
	s.mu.Lock()
	s.sessions = append(s.sessions, ses)
	s.mu.Unlock()
}

// snapshot returns the current session list.
func (s *Server) snapshot() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Session(nil), s.sessions...)
}

// BeginDrain starts a graceful shutdown: /readyz flips to 503 so the
// load balancer stops routing new scrapes, while /metrics and
// /sessions keep answering — requests already on the wire (and any
// stragglers the balancer still sends) drain cleanly instead of being
// cut off mid-body.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// WaitIdle blocks until every in-flight request has finished AND every
// attached session's flight recorder has flushed its in-flight bundle
// seals — shutting down mid-incident must not truncate the one artifact
// that explains the incident. Call after BeginDrain and before closing
// the listener.
func (s *Server) WaitIdle() {
	s.inflight.Wait()
	for _, ses := range s.snapshot() {
		if rec := ses.Recorder(); rec != nil {
			rec.Drain()
		}
	}
}

// track wraps a handler with the in-flight accounting behind WaitIdle.
func (s *Server) track(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Done()
		if s.testHookRequest != nil {
			s.testHookRequest(path)
		}
		h(w, r)
	}
}

// Handler returns the plane's mux: /metrics, /healthz, /readyz,
// /sessions, plus POST /debug/bundle to seal diagnostics bundles on
// demand.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.track("/metrics", s.handleMetrics))
	mux.HandleFunc("/healthz", s.track("/healthz", s.handleHealthz))
	mux.HandleFunc("/readyz", s.track("/readyz", s.handleReadyz))
	mux.HandleFunc("/sessions", s.track("/sessions", s.handleSessions))
	mux.HandleFunc("/debug/bundle", s.track("/debug/bundle", s.handleBundle))
	return mux
}

// send writes a fully-buffered response; a broken scrape connection is
// the client's problem, not ours.
func send(w http.ResponseWriter, status int, contentType string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		return // client went away mid-response; nothing to clean up
	}
}

// handleMetrics renders every session's registry with a session label,
// concatenated into one exposition document, prefixed by the process-
// level series (build metadata, uptime) that belong to the plane rather
// than any one session.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b bytes.Buffer
	fmt.Fprintf(&b, "# HELP csecg_build_info build metadata as labels; the value is constant 1\n"+
		"# TYPE csecg_build_info gauge\ncsecg_build_info{%s} 1\n", buildInfoLabels())
	fmt.Fprintf(&b, "# HELP process_uptime_seconds_total seconds since the observability plane started\n"+
		"# TYPE process_uptime_seconds_total counter\nprocess_uptime_seconds_total %.3f\n",
		float64(s.clock.Now()-s.startNs)/1e9)
	for _, ses := range s.snapshot() {
		if err := telemetry.WritePrometheusLabeled(&b, ses.Registry(),
			telemetry.Label{Key: "session", Value: ses.Name()}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if sp := ses.Spans(); sp != nil {
			// Per-stage latency contribution with trace-ID exemplars —
			// the scrape-side entry point of the latency-triage loop.
			if err := sp.WriteStageSeconds(&b,
				telemetry.Label{Key: "session", Value: ses.Name()}); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
	}
	send(w, http.StatusOK, "text/plain; version=0.0.4; charset=utf-8", b.Bytes())
}

// handleHealthz is pure liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	uptime := s.clock.Now() - s.startNs
	send(w, http.StatusOK, "application/json",
		[]byte(fmt.Sprintf("{\"status\":\"ok\",\"uptime_ns\":%d,\"sessions\":%d}\n",
			uptime, len(s.snapshot()))))
}

// Ready reports readiness: the plane is not draining, at least one
// session is attached, and every unfinished session's coordinator is
// keyed and decoding. A degraded or still-starting stream makes the
// plane not ready; finished sessions stop gating.
func (s *Server) Ready() (bool, string) {
	if s.Draining() {
		return false, "draining"
	}
	sessions := s.snapshot()
	if len(sessions) == 0 {
		return false, "no sessions attached"
	}
	live := 0
	for _, ses := range sessions {
		if ses.Finished() {
			continue
		}
		live++
		if h := ses.Health(); h != coordinator.HealthDecoding {
			return false, fmt.Sprintf("session %q %s", ses.Name(), h)
		}
	}
	if live == 0 {
		return true, "all sessions finished"
	}
	return true, "decoding"
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready, reason := s.Ready()
	status := http.StatusOK
	state := "ready"
	if !ready {
		status = http.StatusServiceUnavailable
		state = "not ready"
	}
	body, err := json.Marshal(map[string]string{"status": state, "reason": reason})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	send(w, status, "application/json", append(body, '\n'))
}

// buildInfoLabels renders the csecg_build_info label set from the
// binary's embedded build metadata: module version, VCS revision and
// dirty flag, and the Go toolchain. Absent fields (tests, go run) read
// "unknown" so the series shape is stable.
func buildInfoLabels() string {
	version, commit, modified, goVersion := "unknown", "unknown", "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		goVersion = bi.GoVersion
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		for _, st := range bi.Settings {
			switch st.Key {
			case "vcs.revision":
				commit = st.Value
			case "vcs.modified":
				modified = st.Value
			}
		}
	}
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return fmt.Sprintf("version=%q,commit=%q,modified=%q,go=%q",
		esc.Replace(version), esc.Replace(commit), esc.Replace(modified), esc.Replace(goVersion))
}

// BundleResult is one session's outcome for POST /debug/bundle.
type BundleResult struct {
	Session string `json:"session"`
	Path    string `json:"path,omitempty"`
	Error   string `json:"error,omitempty"`
}

// handleBundle seals a diagnostics bundle on demand for every attached
// session with a flight recorder (or just ?session=<name>). Manual
// seals bypass the trigger rate limit but still honor the per-session
// bundle cap.
func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	want := r.URL.Query().Get("session")
	matched := false
	results := []BundleResult{}
	for _, ses := range s.snapshot() {
		if want != "" && ses.Name() != want {
			continue
		}
		matched = true
		rec := ses.Recorder()
		if rec == nil {
			continue
		}
		path, err := rec.SealNow(blackbox.TriggerManual, "POST /debug/bundle")
		res := BundleResult{Session: ses.Name(), Path: path}
		if err != nil {
			res.Error = err.Error()
		}
		results = append(results, res)
	}
	switch {
	case want != "" && !matched:
		http.Error(w, fmt.Sprintf("no session named %q", want), http.StatusNotFound)
		return
	case len(results) == 0:
		http.Error(w, "no attached session has a flight recorder", http.StatusNotFound)
		return
	}
	body, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	send(w, http.StatusOK, "application/json", append(body, '\n'))
}

func (s *Server) handleSessions(w http.ResponseWriter, _ *http.Request) {
	sessions := s.snapshot()
	statuses := make([]SessionStatus, 0, len(sessions))
	for _, ses := range sessions {
		statuses = append(statuses, ses.Snapshot())
	}
	body, err := json.MarshalIndent(statuses, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	send(w, http.StatusOK, "application/json", append(body, '\n'))
}
