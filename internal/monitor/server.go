package monitor

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"csecg/internal/coordinator"
	"csecg/internal/telemetry"
)

// Server is the observability HTTP plane. Sessions are attached as the
// fleet spins up streams; the handler serves Prometheus text on
// /metrics, liveness on /healthz, readiness on /readyz, and per-stream
// JSON on /sessions.
type Server struct {
	clock   telemetry.Clock
	startNs int64

	// Sessions live in an append-only slice so every export walks them
	// in attach order — no map iteration anywhere near the wire format.
	mu       sync.Mutex
	sessions []*Session
	draining bool

	// inflight tracks requests currently being served, so shutdown can
	// wait for scrapes that were on the wire when the drain began.
	inflight sync.WaitGroup

	// testHookRequest, when set, runs at the start of every request —
	// the test seam that holds a scrape in flight across BeginDrain.
	testHookRequest func(path string)
}

// NewServer builds a server. clock (nil → telemetry.WallClock) stamps
// uptime; inject a ManualClock in tests.
func NewServer(clock telemetry.Clock) *Server {
	if clock == nil {
		clock = telemetry.WallClock{}
	}
	return &Server{clock: clock, startNs: clock.Now()}
}

// Attach registers a session with the plane.
func (s *Server) Attach(ses *Session) {
	s.mu.Lock()
	s.sessions = append(s.sessions, ses)
	s.mu.Unlock()
}

// snapshot returns the current session list.
func (s *Server) snapshot() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Session(nil), s.sessions...)
}

// BeginDrain starts a graceful shutdown: /readyz flips to 503 so the
// load balancer stops routing new scrapes, while /metrics and
// /sessions keep answering — requests already on the wire (and any
// stragglers the balancer still sends) drain cleanly instead of being
// cut off mid-body.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// WaitIdle blocks until every in-flight request has finished. Call
// after BeginDrain and before closing the listener.
func (s *Server) WaitIdle() { s.inflight.Wait() }

// track wraps a handler with the in-flight accounting behind WaitIdle.
func (s *Server) track(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Done()
		if s.testHookRequest != nil {
			s.testHookRequest(path)
		}
		h(w, r)
	}
}

// Handler returns the plane's mux: /metrics, /healthz, /readyz,
// /sessions.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.track("/metrics", s.handleMetrics))
	mux.HandleFunc("/healthz", s.track("/healthz", s.handleHealthz))
	mux.HandleFunc("/readyz", s.track("/readyz", s.handleReadyz))
	mux.HandleFunc("/sessions", s.track("/sessions", s.handleSessions))
	return mux
}

// send writes a fully-buffered response; a broken scrape connection is
// the client's problem, not ours.
func send(w http.ResponseWriter, status int, contentType string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		return // client went away mid-response; nothing to clean up
	}
}

// handleMetrics renders every session's registry with a session label,
// concatenated into one exposition document.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b bytes.Buffer
	for _, ses := range s.snapshot() {
		if err := telemetry.WritePrometheusLabeled(&b, ses.Registry(),
			telemetry.Label{Key: "session", Value: ses.Name()}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	send(w, http.StatusOK, "text/plain; version=0.0.4; charset=utf-8", b.Bytes())
}

// handleHealthz is pure liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	uptime := s.clock.Now() - s.startNs
	send(w, http.StatusOK, "application/json",
		[]byte(fmt.Sprintf("{\"status\":\"ok\",\"uptime_ns\":%d,\"sessions\":%d}\n",
			uptime, len(s.snapshot()))))
}

// Ready reports readiness: the plane is not draining, at least one
// session is attached, and every unfinished session's coordinator is
// keyed and decoding. A degraded or still-starting stream makes the
// plane not ready; finished sessions stop gating.
func (s *Server) Ready() (bool, string) {
	if s.Draining() {
		return false, "draining"
	}
	sessions := s.snapshot()
	if len(sessions) == 0 {
		return false, "no sessions attached"
	}
	live := 0
	for _, ses := range sessions {
		if ses.Finished() {
			continue
		}
		live++
		if h := ses.Health(); h != coordinator.HealthDecoding {
			return false, fmt.Sprintf("session %q %s", ses.Name(), h)
		}
	}
	if live == 0 {
		return true, "all sessions finished"
	}
	return true, "decoding"
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready, reason := s.Ready()
	status := http.StatusOK
	state := "ready"
	if !ready {
		status = http.StatusServiceUnavailable
		state = "not ready"
	}
	body, err := json.Marshal(map[string]string{"status": state, "reason": reason})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	send(w, status, "application/json", append(body, '\n'))
}

func (s *Server) handleSessions(w http.ResponseWriter, _ *http.Request) {
	sessions := s.snapshot()
	statuses := make([]SessionStatus, 0, len(sessions))
	for _, ses := range sessions {
		statuses = append(statuses, ses.Snapshot())
	}
	body, err := json.MarshalIndent(statuses, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	send(w, http.StatusOK, "application/json", append(body, '\n'))
}
