package monitor

import (
	"encoding/json"
	"io"
	"sync"

	"csecg/internal/telemetry"
)

// AlertState is an SLO's alert ladder position.
type AlertState int

// Alert states, ordered by severity.
const (
	AlertOK AlertState = iota
	AlertWarning
	AlertCritical
)

// String names the state.
func (a AlertState) String() string {
	switch a {
	case AlertWarning:
		return "warning"
	case AlertCritical:
		return "critical"
	default:
		return "ok"
	}
}

// SLOConfig parameterizes one windowed burn-rate tracker.
type SLOConfig struct {
	// Name labels the SLO in metrics and transition events
	// (e.g. "quality", "latency").
	Name string
	// Budget is the allowed violation fraction over the window
	// (default 0.05 — mirroring "≤ 5 % of windows may estimate bad").
	Budget float64
	// Window is the sliding observation count the burn rate is computed
	// over (default 30, i.e. one minute of 2-second windows).
	Window int
	// WarnBurn and PageBurn are the burn-rate thresholds for the
	// warning and critical states (defaults 1 and 2: consuming budget
	// exactly on schedule warns, twice as fast pages).
	WarnBurn, PageBurn float64
	// MinSamples suppresses alerts until the window has at least this
	// many observations (default Window/4), so the first bad window of
	// a session cannot page by itself.
	MinSamples int
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Budget == 0 {
		c.Budget = 0.05
	}
	if c.Window == 0 {
		c.Window = 30
	}
	if c.WarnBurn == 0 {
		c.WarnBurn = 1
	}
	if c.PageBurn == 0 {
		c.PageBurn = 2
	}
	if c.MinSamples == 0 {
		c.MinSamples = (c.Window + 3) / 4
	}
	return c
}

// Transition is one alert state change, emitted as a JSONL event.
type Transition struct {
	// TimelineNs is the modeled session time of the transition.
	TimelineNs int64 `json:"ts_ns"`
	// Session and SLO identify the tracker.
	Session string `json:"session,omitempty"`
	SLO     string `json:"slo"`
	// From and To are the alert states; Burn the burn rate that caused
	// the change; Violations/Samples the window contents behind it.
	From       string  `json:"from"`
	To         string  `json:"to"`
	Burn       float64 `json:"burn"`
	Violations int     `json:"violations"`
	Samples    int     `json:"samples"`
}

// SLO is a windowed burn-rate tracker over a boolean violation stream.
// Observe is called once per window from the streaming goroutine;
// State/BurnRate/Transitions may be read concurrently.
type SLO struct {
	mu      sync.Mutex
	cfg     SLOConfig
	session string

	ring       []bool
	idx, n     int
	violations int
	state      AlertState

	sink    io.Writer // JSONL transition log (nil → none)
	sinkErr error
	hook    func(tr Transition, from, to AlertState)

	stateGauge, burnGauge *telemetry.Gauge
	transitions           *telemetry.Counter
	history               []Transition
}

// NewSLO builds a tracker. The registry (optional) receives
// slo_<name>_alert_state and slo_<name>_burn_milli gauges plus a
// slo_<name>_transitions_total counter; sink (optional) receives one
// JSON line per alert transition.
func NewSLO(cfg SLOConfig, session string, reg *telemetry.Registry, sink io.Writer) *SLO {
	cfg = cfg.withDefaults()
	s := &SLO{cfg: cfg, session: session, ring: make([]bool, cfg.Window), sink: sink}
	if reg != nil {
		s.stateGauge = reg.Gauge("slo_" + cfg.Name + "_alert_state")
		s.burnGauge = reg.Gauge("slo_" + cfg.Name + "_burn_milli")
		s.transitions = reg.Counter("slo_" + cfg.Name + "_transitions_total")
		reg.SetHelp("slo_"+cfg.Name+"_alert_state", "alert ladder position: 0 ok, 1 warning, 2 critical")
		reg.SetHelp("slo_"+cfg.Name+"_burn_milli", "error-budget burn rate x1000 over the sliding window")
		reg.SetHelp("slo_"+cfg.Name+"_transitions_total", "alert state changes")
	}
	return s
}

// SetHook installs a transition callback — the flight-recorder trigger
// path. It runs outside the tracker mutex, after the transition is
// committed, on the observing goroutine. Install before streaming
// starts; the field is not synchronized against concurrent Observe.
func (s *SLO) SetHook(fn func(tr Transition, from, to AlertState)) { s.hook = fn }

// Observe records one window's outcome at the given modeled time and
// re-evaluates the alert state. The transition sink write happens
// outside the critical section: a slow JSONL flush must not stall
// every State/Burn reader behind the mutex.
func (s *SLO) Observe(timelineNs int64, violated bool) {
	s.mu.Lock()
	if s.n == len(s.ring) {
		if s.ring[s.idx] {
			s.violations--
		}
	} else {
		s.n++
	}
	s.ring[s.idx] = violated
	if violated {
		s.violations++
	}
	s.idx = (s.idx + 1) % len(s.ring)

	burn := s.burnLocked()
	if s.burnGauge != nil {
		s.burnGauge.Set(int64(burn * 1000))
	}
	next := s.state
	if s.n >= s.cfg.MinSamples {
		switch {
		case burn >= s.cfg.PageBurn:
			next = AlertCritical
		case burn >= s.cfg.WarnBurn:
			next = AlertWarning
		default:
			next = AlertOK
		}
	}
	if next == s.state {
		s.mu.Unlock()
		return
	}
	from := s.state
	tr := Transition{
		TimelineNs: timelineNs,
		Session:    s.session,
		SLO:        s.cfg.Name,
		From:       s.state.String(),
		To:         next.String(),
		Burn:       burn,
		Violations: s.violations,
		Samples:    s.n,
	}
	s.state = next
	s.history = append(s.history, tr)
	if s.stateGauge != nil {
		s.stateGauge.Set(int64(next))
	}
	if s.transitions != nil {
		s.transitions.Inc()
	}
	sink := s.sink
	hook := s.hook
	s.mu.Unlock()

	if hook != nil {
		hook(tr, from, next)
	}
	if sink == nil {
		return
	}
	// Encode performs a single Write per record, so concurrent
	// transitions interleave as whole JSONL lines, never partial ones.
	if err := json.NewEncoder(sink).Encode(&tr); err != nil {
		s.mu.Lock()
		if s.sinkErr == nil {
			s.sinkErr = err
		}
		s.mu.Unlock()
	}
}

// burnLocked computes violationFraction / budget over the window.
func (s *SLO) burnLocked() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.violations) / float64(s.n) / s.cfg.Budget
}

// State returns the current alert state.
func (s *SLO) State() AlertState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// BurnRate returns the current burn rate (1 = consuming the error
// budget exactly on schedule).
func (s *SLO) BurnRate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.burnLocked()
}

// Transitions returns the alert history so far.
func (s *SLO) Transitions() []Transition {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Transition(nil), s.history...)
}

// SinkErr reports the first JSONL write failure (nil when healthy).
func (s *SLO) SinkErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sinkErr
}

// Status is the SLO's JSON snapshot for /sessions.
type Status struct {
	State       string  `json:"state"`
	Burn        float64 `json:"burn"`
	Violations  int     `json:"violations"`
	Samples     int     `json:"samples"`
	Budget      float64 `json:"budget"`
	Transitions int     `json:"transitions"`
}

// Snapshot returns the JSON status.
func (s *SLO) Snapshot() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Status{
		State:       s.state.String(),
		Burn:        s.burnLocked(),
		Violations:  s.violations,
		Samples:     s.n,
		Budget:      s.cfg.Budget,
		Transitions: len(s.history),
	}
}
