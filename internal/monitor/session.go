package monitor

import (
	"sync"

	"csecg/internal/blackbox"
	"csecg/internal/coordinator"
	"csecg/internal/telemetry"
)

// SessionConfig describes one tracked stream.
type SessionConfig struct {
	// Name identifies the session in /sessions and as the Prometheus
	// session label (e.g. the record ID).
	Name string
	// Registry is the stream's telemetry registry — the same one passed
	// to RunStream via StreamConfig.Metrics — so the session can serve
	// its counters and pull latency quantiles.
	Registry *telemetry.Registry
	// QualitySLO and LatencySLO override the default trackers (zero
	// values → defaults; see DefaultQualitySLO/DefaultLatencySLO).
	QualitySLO, LatencySLO SLOConfig
	// LatencyTargetNs is the per-window recovery-latency objective a
	// window must beat to satisfy the latency SLO (default 3 s: one
	// half-window of margin past the paper's 2-second real-time budget
	// plus the pipelined encode/transmit slot).
	LatencyTargetNs int64
	// Recorder is the stream's flight recorder (optional). The session
	// wires SLO transitions into it, and an alert escalation to
	// warning/critical seals a diagnostics bundle.
	Recorder *blackbox.Recorder
	// Spans is the stream's causal span tracer (optional) — the same
	// one passed to RunStream via StreamConfig.Spans. The server renders
	// its csecg_window_stage_seconds exemplar histograms on /metrics,
	// and /sessions links the worst-latency and last-bad windows to
	// their trace IDs.
	Spans *telemetry.CausalTracer
}

// DefaultLatencyTargetNs is the default per-window latency objective.
const DefaultLatencyTargetNs = 3_000_000_000

// Session tracks one stream: it implements Observer, aggregates the
// live status RunStream pushes, and feeds the two SLO trackers. All
// methods are safe for concurrent use — RunStream writes from the
// streaming goroutine while the HTTP server reads.
type Session struct {
	mu  sync.Mutex
	cfg SessionConfig

	windows, bad int
	degraded     int
	sumEst       float64
	worstEst     float64
	last         WindowStatus
	slot         SlotStatus
	finished     bool

	// Trace links for /sessions: the worst-latency window seen so far
	// and the most recent bad/degraded window (0 when tracing is off).
	worstLatencyNs    int64
	worstLatencyTrace uint64
	lastBadTrace      uint64

	quality, latency *SLO
}

// NewSession builds a tracker and registers its SLO metrics on the
// session registry. The JSONL sink (optional) receives alert
// transitions from both SLOs.
func NewSession(cfg SessionConfig, sink interface{ Write([]byte) (int, error) }) *Session {
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.QualitySLO.Name == "" {
		cfg.QualitySLO.Name = "quality"
	}
	if cfg.LatencySLO.Name == "" {
		cfg.LatencySLO.Name = "latency"
	}
	if cfg.LatencyTargetNs == 0 {
		cfg.LatencyTargetNs = DefaultLatencyTargetNs
	}
	s := &Session{
		cfg:     cfg,
		quality: NewSLO(cfg.QualitySLO, cfg.Name, cfg.Registry, sink),
		latency: NewSLO(cfg.LatencySLO, cfg.Name, cfg.Registry, sink),
	}
	if rec := cfg.Recorder; rec != nil {
		WireRecorder(s.quality, rec)
		WireRecorder(s.latency, rec)
	}
	return s
}

// WireRecorder connects an SLO tracker to a flight recorder: every
// alert transition is captured as a bundle event, and an escalation to
// warning or critical seals a diagnostics bundle (rate-limited by the
// recorder). Install before streaming starts.
func WireRecorder(s *SLO, rec *blackbox.Recorder) {
	s.SetHook(func(tr Transition, from, to AlertState) {
		rec.RecordSLOTransition(tr.TimelineNs, tr.SLO, int64(from), int64(to))
		// Escalations seal a bundle; recoveries only log the event.
		if to > from && to >= AlertWarning {
			rec.TriggerSeal(blackbox.TriggerSLO, tr.TimelineNs,
				"slo "+tr.SLO+" "+tr.From+"->"+tr.To)
		}
	})
}

// Recorder returns the session's flight recorder (nil when none was
// configured).
func (s *Session) Recorder() *blackbox.Recorder { return s.cfg.Recorder }

// Name returns the session's label.
func (s *Session) Name() string { return s.cfg.Name }

// Registry returns the session's telemetry registry for scraping.
func (s *Session) Registry() *telemetry.Registry { return s.cfg.Registry }

// Spans returns the session's causal span tracer (nil when span tracing
// was not configured).
func (s *Session) Spans() *telemetry.CausalTracer { return s.cfg.Spans }

// OnWindow implements Observer: one decoded window's status.
func (s *Session) OnWindow(w WindowStatus) {
	s.mu.Lock()
	s.windows++
	if w.Bad {
		s.bad++
	}
	if w.Degraded {
		s.degraded++
	}
	s.sumEst += w.EstPRDN
	if w.EstPRDN > s.worstEst {
		s.worstEst = w.EstPRDN
	}
	if w.LatencyNs > s.worstLatencyNs || s.windows == 1 {
		s.worstLatencyNs = w.LatencyNs
		s.worstLatencyTrace = w.TraceID
	}
	if w.Bad || w.Degraded {
		s.lastBadTrace = w.TraceID
	}
	s.last = w
	s.mu.Unlock()
	s.quality.Observe(w.TimelineNs, w.Bad)
	s.latency.Observe(w.TimelineNs, w.LatencyNs > s.cfg.LatencyTargetNs)
}

// OnSlot implements Observer: the per-slot transport snapshot.
func (s *Session) OnSlot(st SlotStatus) {
	s.mu.Lock()
	s.slot = st
	s.mu.Unlock()
}

// Finish marks the stream complete; a finished session no longer
// gates /readyz.
func (s *Session) Finish() {
	s.mu.Lock()
	s.finished = true
	s.mu.Unlock()
}

// Health returns the session's current receiver health. Before the
// first slot snapshot this is HealthStarting.
func (s *Session) Health() coordinator.Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slot.Health
}

// Finished reports whether the stream has completed.
func (s *Session) Finished() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.finished
}

// LatencyQuantiles is the decode-latency percentile triple.
type LatencyQuantiles struct {
	P50Ns int64 `json:"p50_ns"`
	P95Ns int64 `json:"p95_ns"`
	P99Ns int64 `json:"p99_ns"`
}

// SessionStatus is the session's JSON snapshot served by /sessions.
type SessionStatus struct {
	Name     string `json:"name"`
	Finished bool   `json:"finished"`
	Health   string `json:"health"`

	Windows     int     `json:"windows"`
	BadWindows  int     `json:"bad_windows"`
	MeanEstPRDN float64 `json:"mean_est_prdn"`
	WorstEst    float64 `json:"worst_est_prdn"`
	LastSeq     uint32  `json:"last_seq"`
	LastEst     float64 `json:"last_est_prdn"`
	// DegradedWindows counts reduced-quality releases (ladder off
	// nominal or deadline-cut solves); LastRung is the degradation
	// rung of the most recent decode.
	DegradedWindows int    `json:"degraded_windows"`
	LastRung        string `json:"last_rung"`

	Decoded    int     `json:"decoded"`
	Abandoned  int     `json:"abandoned"`
	Gaps       int     `json:"gaps"`
	Recoveries int     `json:"recoveries"`
	GapRate    float64 `json:"gap_rate"`

	Latency LatencyQuantiles `json:"latency"`

	// WorstLatencyTraceID and LastBadTraceID are hex causal trace IDs
	// linking the session's worst-latency window and its most recent
	// bad/degraded window into the span tracer's retained trees and the
	// flight recorder's bundles (empty when span tracing is off).
	WorstLatencyTraceID string `json:"worst_latency_trace_id,omitempty"`
	LastBadTraceID      string `json:"last_bad_trace_id,omitempty"`

	QualitySLO Status `json:"quality_slo"`
	LatencySLO Status `json:"latency_slo"`
}

// Snapshot returns the JSON-ready status.
func (s *Session) Snapshot() SessionStatus {
	s.mu.Lock()
	st := SessionStatus{
		Name:            s.cfg.Name,
		Finished:        s.finished,
		Health:          s.slot.Health.String(),
		Windows:         s.windows,
		BadWindows:      s.bad,
		WorstEst:        s.worstEst,
		LastSeq:         s.last.Seq,
		LastEst:         s.last.EstPRDN,
		DegradedWindows: s.degraded,
		LastRung:        s.last.Rung.String(),
		Decoded:         s.slot.Decoded,
		Abandoned:       s.slot.Abandoned,
		Gaps:            s.slot.Gaps,
		Recoveries:      s.slot.Recoveries,
		GapRate:         s.slot.GapRate,

		WorstLatencyTraceID: telemetry.TraceIDString(s.worstLatencyTrace),
		LastBadTraceID:      telemetry.TraceIDString(s.lastBadTrace),
	}
	if s.windows > 0 {
		st.MeanEstPRDN = s.sumEst / float64(s.windows)
	}
	s.mu.Unlock()
	qs := s.cfg.Registry.Histogram("stream_decode_latency_ns").Quantiles(0.50, 0.95, 0.99)
	st.Latency = LatencyQuantiles{P50Ns: qs[0], P95Ns: qs[1], P99Ns: qs[2]}
	st.QualitySLO = s.quality.Snapshot()
	st.LatencySLO = s.latency.Snapshot()
	return st
}

// QualitySLO exposes the bad-window burn-rate tracker.
func (s *Session) QualitySLO() *SLO { return s.quality }

// LatencySLO exposes the decode-latency burn-rate tracker.
func (s *Session) LatencySLO() *SLO { return s.latency }
