// Package monitor is the fleet observability plane: live per-stream
// status fed by RunStream, ground-truth-free quality accounting, SLO
// burn-rate alerting, and an HTTP server exposing the whole thing as
// /metrics (Prometheus text), /healthz, /readyz and /sessions.
//
// The paper argues its system on two observable quantities —
// reconstruction quality (PRD ≤ 9 % is "good") and node energy — but a
// deployed coordinator never has the original signal to compute PRD
// against. This package consumes the decoder-side quality estimate
// (metrics.EstimatePRDN) instead, tracks its bad-window rate against an
// error budget, and serves the result to scrapes and dashboards while
// the session runs.
package monitor

import "csecg/internal/coordinator"

// WindowStatus is one decoded window's live status, pushed by RunStream
// through the Observer hook on the modeled session timeline.
type WindowStatus struct {
	// Seq is the window sequence number.
	Seq uint32
	// EstPRDN is the ground-truth-free quality estimate (percent) and
	// Bad its classification against the paper's 9 % boundary.
	EstPRDN float64
	Bad     bool
	// Residual is the normalized FISTA data residual behind the
	// estimate; Iterations and Converged summarize the solve.
	Residual   float64
	Iterations int
	Converged  bool
	// Degraded marks a reduced-quality release — the coordinator's
	// degradation ladder was off nominal or the solver's soft deadline
	// cut the recovery short — and Rung the ladder rung it decoded at.
	Degraded bool
	Rung     coordinator.Rung
	// LatencyNs is the window's recovery latency: acquisition end to
	// reconstruction available, including reorder/retransmit delays.
	LatencyNs int64
	// TimelineNs is the modeled session time of the update.
	TimelineNs int64
	// TraceID is the window's causal trace ID (0 when span tracing is
	// off) — the join key into the span tracer's retained trees, the
	// stage-seconds exemplars and sealed diagnostics bundles.
	TraceID uint64
}

// SlotStatus is the per-window-period transport snapshot, pushed once
// per slot after the receiver's control-traffic turn.
type SlotStatus struct {
	// Slot counts window periods; Windows the windows produced so far.
	Slot, Windows int
	// Health is the receiver's liveness state (the /readyz input).
	Health coordinator.Health
	// Decoded/Abandoned/Gaps/Recoveries mirror TransportStats.
	Decoded, Abandoned, Gaps, Recoveries int
	// GapRate is the sliding recent-loss fraction.
	GapRate float64
	// TimelineNs is the modeled session time of the slot end.
	TimelineNs int64
}

// Observer receives live stream updates. RunStream calls it inline on
// the streaming goroutine, so implementations must be fast and must do
// their own locking if read concurrently (Session does both).
type Observer interface {
	OnWindow(WindowStatus)
	OnSlot(SlotStatus)
}
