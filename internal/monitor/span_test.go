package monitor_test

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"csecg"
	"csecg/internal/monitor"
	"csecg/internal/telemetry"
)

// TestSessionsExposeTraceIDs pins the triage jump-off points: after a
// lossy traced session, /sessions carries the trace IDs of the
// session's worst-latency and last-bad windows, and /metrics serves the
// per-stage histograms with trace exemplars — metric → trace ID →
// csecg-triage.
func TestSessionsExposeTraceIDs(t *testing.T) {
	reg := telemetry.NewRegistry()
	spans := csecg.NewSpanTracer(csecg.SpanTracerConfig{Label: "rec 100"})
	ses := monitor.NewSession(monitor.SessionConfig{
		Name:     "rec 100",
		Registry: reg,
		Spans:    spans,
	}, nil)
	srv := monitor.NewServer(nil)
	srv.Attach(ses)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	lnk := csecg.DefaultLinkConfig()
	lnk.Burst = &csecg.BurstConfig{PGoodBad: 0.08, PBadGood: 0.4}
	lnk.Seed = 0xC0FFEE
	rep, err := csecg.RunStream(csecg.StreamConfig{
		RecordID:  "100",
		Seconds:   30,
		Params:    csecg.Params{Seed: 0x601, M: csecg.MForCR(50, csecg.WindowSize)},
		Link:      lnk,
		Transport: csecg.TransportConfig{NACK: true},
		Metrics:   reg,
		Observer:  ses,
		Spans:     spans,
	})
	if err != nil {
		t.Fatal(err)
	}
	ses.Finish()
	if rep.Transport.Gaps == 0 {
		t.Fatal("burst channel produced no gaps")
	}

	res, err := ts.Client().Get(ts.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var statuses []monitor.SessionStatus
	if err := json.NewDecoder(res.Body).Decode(&statuses); err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 1 {
		t.Fatalf("/sessions has %d entries, want 1", len(statuses))
	}
	st := statuses[0]
	if len(st.WorstLatencyTraceID) != 16 {
		t.Errorf("worst-latency trace ID %q, want 16 hex digits", st.WorstLatencyTraceID)
	}
	// The worst-latency ID must be derivable from the session's seed —
	// i.e. it names a real window of this session.
	found := false
	for _, w := range spans.Retained() {
		if telemetry.TraceIDString(w.TraceID) == st.WorstLatencyTraceID {
			found = true
		}
	}
	if !found {
		t.Errorf("worst-latency trace %s not among the retained trees", st.WorstLatencyTraceID)
	}

	mres, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mres.Body.Close()
	raw, err := io.ReadAll(mres.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		telemetry.StageSecondsMetric + `_bucket{session="rec 100",stage="`,
		`# {trace_id="`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
