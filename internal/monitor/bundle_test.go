package monitor_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"csecg/internal/blackbox"
	"csecg/internal/monitor"
	"csecg/internal/telemetry"
)

// gatedSink blocks WriteBundle until released — the seam that holds a
// bundle write in flight across a server drain.
type gatedSink struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once

	mu    sync.Mutex
	wrote []string
}

func newGatedSink() *gatedSink {
	return &gatedSink{entered: make(chan struct{}), release: make(chan struct{})}
}

func (s *gatedSink) WriteBundle(name string, data []byte) (string, error) {
	s.once.Do(func() { close(s.entered) })
	<-s.release
	s.mu.Lock()
	s.wrote = append(s.wrote, name)
	s.mu.Unlock()
	return "gated://" + name, nil
}

func (s *gatedSink) written() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.wrote)
}

// TestShutdownDrainsBundleWrites pins the shutdown contract extension:
// WaitIdle blocks until an in-flight bundle seal has landed, so closing
// the process mid-incident cannot truncate the one artifact that
// explains the incident.
func TestShutdownDrainsBundleWrites(t *testing.T) {
	sink := newGatedSink()
	rec := blackbox.NewRecorder(blackbox.Config{Session: "drain", Sink: sink})
	srv := monitor.NewServer(&telemetry.ManualClock{})
	srv.Attach(monitor.NewSession(monitor.SessionConfig{Name: "drain", Recorder: rec}, nil))

	sealDone := make(chan error, 1)
	go func() {
		_, err := rec.SealNow(blackbox.TriggerManual, "incident")
		sealDone <- err
	}()
	<-sink.entered // the write is on the wire

	srv.BeginDrain()
	idle := make(chan struct{})
	go func() {
		srv.WaitIdle()
		close(idle)
	}()
	select {
	case <-idle:
		t.Fatal("WaitIdle returned while a bundle write was in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(sink.release)
	select {
	case <-idle:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitIdle never returned after the write landed")
	}
	if err := <-sealDone; err != nil {
		t.Fatal(err)
	}
	if sink.written() != 1 {
		t.Fatalf("wrote %d bundles, want 1", sink.written())
	}
}

// openSink records bundles without blocking.
type openSink struct {
	mu    sync.Mutex
	wrote []string
}

func (s *openSink) WriteBundle(name string, data []byte) (string, error) {
	s.mu.Lock()
	s.wrote = append(s.wrote, name)
	s.mu.Unlock()
	return "mem://" + name, nil
}

// TestDebugBundleEndpoint covers POST /debug/bundle: method gating,
// per-session filtering, the no-recorder 404, and the drain 503.
func TestDebugBundleEndpoint(t *testing.T) {
	sink := &openSink{}
	rec := blackbox.NewRecorder(blackbox.Config{Session: "record 100", Sink: sink})
	srv := monitor.NewServer(&telemetry.ManualClock{})
	srv.Attach(monitor.NewSession(monitor.SessionConfig{Name: "record 100", Recorder: rec}, nil))
	srv.Attach(monitor.NewSession(monitor.SessionConfig{Name: "record 200"}, nil))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	do := func(method, path string) (int, string) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, _ := do(http.MethodGet, "/debug/bundle"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /debug/bundle: %d, want 405", code)
	}
	if code, body := do(http.MethodPost, "/debug/bundle?session=nope"); code != http.StatusNotFound {
		t.Fatalf("unknown session: %d %s, want 404", code, body)
	}
	// record 200 exists but has no recorder.
	if code, body := do(http.MethodPost, "/debug/bundle?session=record+200"); code != http.StatusNotFound ||
		!strings.Contains(body, "no attached session has a flight recorder") {
		t.Fatalf("recorder-less session: %d %s, want 404", code, body)
	}
	code, body := do(http.MethodPost, "/debug/bundle")
	if code != http.StatusOK {
		t.Fatalf("POST /debug/bundle: %d %s", code, body)
	}
	if !strings.Contains(body, `"session": "record 100"`) ||
		!strings.Contains(body, "mem://bundle-record-100-000-manual.jsonl") {
		t.Fatalf("bundle response missing the sealed path: %s", body)
	}
	if len(sink.wrote) != 1 {
		t.Fatalf("sealed %d bundles, want 1", len(sink.wrote))
	}

	srv.BeginDrain()
	if code, _ := do(http.MethodPost, "/debug/bundle"); code != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining: %d, want 503", code)
	}
}

// TestMetricsProcessSeries: /metrics leads with the process-level
// series — build metadata and uptime — ahead of any session registry.
func TestMetricsProcessSeries(t *testing.T) {
	clk := &telemetry.ManualClock{}
	srv := monitor.NewServer(clk)
	clk.Advance(2_500_000_000) // 2.5 s of uptime
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE csecg_build_info gauge",
		`csecg_build_info{version=`,
		`go="go1.`,
		"# TYPE process_uptime_seconds_total counter",
		"process_uptime_seconds_total 2.500",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	if !strings.HasPrefix(body, "# HELP csecg_build_info") {
		t.Errorf("process series must lead the exposition, got:\n%.200s", body)
	}
}
