package holter

import (
	"fmt"
	"math"
	"sort"
)

// AF detection from RR statistics.
//
// Atrial fibrillation and frequent ectopy both inflate naive RR
// variability numbers; what distinguishes them is the *shape* of the RR
// distribution. AF spreads the bulk of the intervals (irregularly
// irregular conduction), while ectopy keeps a tight sinus bulk with
// short-coupling/compensatory outliers (low interquartile dispersion)
// or, in bigeminy-class rhythms, alternates between two widely spaced
// clusters (enormous interquartile dispersion). The detector therefore
// classifies on the interquartile range of the RR intervals normalized
// by their median — a statistic the ectopic tails cannot move — and
// calls AF inside a band.
const (
	// AFIQRLow and AFIQRHigh bound the normalized interquartile NN
	// dispersion of fibrillation. Calibrated on the substitute
	// database: AF windows measure 0.19-0.36, sinus ≤ 0.10, ectopic
	// rhythms (after NN exclusion) ≤ 0.18 or ≥ 0.80.
	AFIQRLow  = 0.20
	AFIQRHigh = 0.50
	// AFWindowBeats is the sliding-window length for episode detection.
	AFWindowBeats = 64
)

// AFEpisode is one detected fibrillation episode.
type AFEpisode struct {
	// Start and End are the beat times (seconds) bounding the episode.
	Start, End float64
}

// RRDispersion returns the normalized interquartile dispersion
// IQR(NN)/median(NN) of a beat sequence. Only normal-to-normal
// intervals enter the statistic: intervals touching a ventricular beat
// (the coupling interval and the compensatory pause) are excluded, as
// clinical AF detectors do — otherwise frequent ectopy masquerades as
// fibrillation.
func RRDispersion(beats []BeatInput) (float64, error) {
	if len(beats) < 8 {
		return 0, fmt.Errorf("holter: %d beats, need at least 8 for dispersion", len(beats))
	}
	rrs := make([]float64, 0, len(beats)-1)
	for i := 1; i < len(beats); i++ {
		if beats[i].Ventricular || beats[i-1].Ventricular {
			continue
		}
		rrs = append(rrs, beats[i].Time-beats[i-1].Time)
	}
	if len(rrs) < 6 {
		return 0, fmt.Errorf("holter: only %d normal-to-normal intervals", len(rrs))
	}
	sort.Float64s(rrs)
	med := rrs[len(rrs)/2]
	if med <= 0 {
		return 0, fmt.Errorf("holter: non-positive median RR")
	}
	iqr := rrs[len(rrs)*3/4] - rrs[len(rrs)/4]
	return iqr / med, nil
}

// IsAFDispersion reports whether a dispersion value falls in the AF band.
func IsAFDispersion(d float64) bool { return d >= AFIQRLow && d <= AFIQRHigh }

// DetectAF slides a window over the beat sequence and returns merged
// fibrillation episodes. Windows shorter than AFWindowBeats at the tail
// are absorbed into the preceding decision. The whole-record fraction of
// AF time is returned alongside the episodes.
func DetectAF(beats []BeatInput) ([]AFEpisode, float64, error) {
	if len(beats) < AFWindowBeats {
		// Short strips: single decision over everything.
		d, err := RRDispersion(beats)
		if err != nil {
			return nil, 0, err
		}
		if IsAFDispersion(d) {
			return []AFEpisode{{Start: beats[0].Time, End: beats[len(beats)-1].Time}}, 1, nil
		}
		return nil, 0, nil
	}
	const step = AFWindowBeats / 4
	type vote struct {
		start, end float64
		af         bool
	}
	var votes []vote
	for o := 0; o+AFWindowBeats <= len(beats); o += step {
		win := beats[o : o+AFWindowBeats]
		d, err := RRDispersion(win)
		if err != nil {
			return nil, 0, err
		}
		votes = append(votes, vote{start: win[0].Time, end: win[len(win)-1].Time, af: IsAFDispersion(d)})
	}
	// Merge consecutive AF votes into episodes.
	var episodes []AFEpisode
	var afTime float64
	total := beats[len(beats)-1].Time - beats[0].Time
	for _, v := range votes {
		if !v.af {
			continue
		}
		if n := len(episodes); n > 0 && v.start <= episodes[n-1].End {
			if v.end > episodes[n-1].End {
				episodes[n-1].End = v.end
			}
		} else {
			episodes = append(episodes, AFEpisode{Start: v.start, End: v.end})
		}
	}
	for _, e := range episodes {
		afTime += e.End - e.Start
	}
	frac := 0.0
	if total > 0 {
		frac = math.Min(1, afTime/total)
	}
	return episodes, frac, nil
}
