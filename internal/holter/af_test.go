package holter

import (
	"testing"

	"csecg/internal/core"
	"csecg/internal/ecg"
	"csecg/internal/metrics"
	"csecg/internal/qrs"
)

// recordBeats detects beats on a record's native 360 Hz signal.
func recordBeats(t testing.TB, id string, seconds float64) []BeatInput {
	t.Helper()
	rec, err := ecg.RecordByID(id)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := rec.Synthesize(seconds)
	if err != nil {
		t.Fatal(err)
	}
	det, err := qrs.NewDetector(ecg.FsMITBIH)
	if err != nil {
		t.Fatal(err)
	}
	var beats []BeatInput
	for _, b := range det.DetectBeats(sig.MV[0]) {
		beats = append(beats, BeatInput{
			Time:        float64(b.Sample) / ecg.FsMITBIH,
			Ventricular: b.Ventricular,
		})
	}
	return beats
}

func TestRRDispersionValidation(t *testing.T) {
	if _, err := RRDispersion(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := RRDispersion(syntheticBeats(5, 0.8, 0)); err == nil {
		t.Error("too-few beats accepted")
	}
	d, err := RRDispersion(syntheticBeats(50, 0.8, 0))
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-9 {
		t.Errorf("regular rhythm dispersion %v, want 0", d)
	}
}

func TestAFDetectionAcrossDatabase(t *testing.T) {
	if testing.Short() {
		t.Skip("classifies many records")
	}
	// Every record must classify correctly from detected beats — AF
	// records as AF-dominant, everything else (sinus, PVC-heavy,
	// APC-heavy, bradycardia) as not.
	for _, rec := range ecg.Database() {
		beats := recordBeats(t, rec.ID, 180)
		_, frac, err := DetectAF(beats)
		if err != nil {
			t.Errorf("record %s: %v", rec.ID, err)
			continue
		}
		if rec.Cfg.AF && frac < 0.6 {
			t.Errorf("AF record %s detected AF fraction %.2f, want ≥ 0.6", rec.ID, frac)
		}
		if !rec.Cfg.AF && frac > 0.3 {
			t.Errorf("non-AF record %s detected AF fraction %.2f, want ≤ 0.3", rec.ID, frac)
		}
	}
}

func TestAFDetectionShortStrip(t *testing.T) {
	beats := recordBeats(t, "202", 45) // ≲ one window of beats
	eps, frac, err := DetectAF(beats)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 1 || len(eps) != 1 {
		t.Errorf("short AF strip: episodes %d frac %.2f", len(eps), frac)
	}
	beats = recordBeats(t, "100", 45)
	_, frac, err = DetectAF(beats)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 0 {
		t.Errorf("short sinus strip AF fraction %.2f", frac)
	}
}

func TestAFEpisodesMerge(t *testing.T) {
	beats := recordBeats(t, "219", 300)
	eps, frac, err := DetectAF(beats)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.6 {
		t.Fatalf("record 219 AF fraction %.2f", frac)
	}
	// Episodes are disjoint and ordered.
	for i := 1; i < len(eps); i++ {
		if eps[i].Start < eps[i-1].End {
			t.Fatalf("episodes overlap: %+v", eps)
		}
	}
	for _, e := range eps {
		if e.End <= e.Start {
			t.Fatalf("degenerate episode %+v", e)
		}
	}
}

func TestAFSurvivesCompression(t *testing.T) {
	// The decisive clinical question: does the AF diagnosis survive the
	// CS pipeline at the paper's operating point?
	rec, err := ecg.RecordByID("202")
	if err != nil {
		t.Fatal(err)
	}
	adc, err := rec.Channel256(180, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{Seed: 0xAF, M: metrics.MForCR(50, core.WindowSize)}
	enc, err := core.NewEncoder(p)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.NewDecoder[float32](p)
	if err != nil {
		t.Fatal(err)
	}
	var recon []float64
	for o := 0; o+core.WindowSize <= len(adc); o += core.WindowSize {
		pkt, err := enc.EncodeWindow(adc[o : o+core.WindowSize])
		if err != nil {
			t.Fatal(err)
		}
		out, err := dec.DecodePacket(pkt)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range out.Samples {
			recon = append(recon, float64(s))
		}
	}
	det, err := qrs.NewDetector(core.FsMote)
	if err != nil {
		t.Fatal(err)
	}
	var beats []BeatInput
	for _, b := range det.DetectBeats(recon) {
		beats = append(beats, BeatInput{Time: float64(b.Sample) / core.FsMote, Ventricular: b.Ventricular})
	}
	_, frac, err := DetectAF(beats)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.6 {
		t.Errorf("AF fraction on reconstruction %.2f, diagnosis lost", frac)
	}
}
