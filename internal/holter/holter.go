// Package holter turns a beat sequence into the analytics a Holter
// report contains: heart-rate statistics, time-domain heart-rate
// variability (HRV) indices, ectopic burden and pause episodes.
//
// The package closes the clinical loop of the monitoring system: the
// pipeline reconstructs the signal, internal/qrs recovers the beats,
// and these analytics are what the cardiologist actually reads. The
// experiments use them to verify that *report-level* outputs — not just
// waveforms — survive compression.
package holter

import (
	"fmt"
	"math"
	"sort"
)

// BeatInput is the minimal per-beat information the analytics need.
type BeatInput struct {
	// Time of the R peak in seconds from recording start.
	Time float64
	// Ventricular marks PVC-like beats (excluded from HRV, counted in
	// the ectopic burden).
	Ventricular bool
}

// Report is the computed summary.
type Report struct {
	// DurationSec is the analyzed span (first to last beat).
	DurationSec float64
	// Beats is the total beat count; VentricularBeats the PVC-like
	// subset.
	Beats, VentricularBeats int
	// MeanHR, MinHR and MaxHR in bpm, from normal-to-normal intervals.
	MeanHR, MinHR, MaxHR float64
	// SDNN is the standard deviation of normal-to-normal intervals (ms).
	SDNN float64
	// RMSSD is the root mean square of successive NN differences (ms).
	RMSSD float64
	// PNN50 is the fraction of successive NN differences above 50 ms.
	PNN50 float64
	// VentricularPerHour is the PVC burden.
	VentricularPerHour float64
	// Pauses lists RR gaps exceeding the pause threshold.
	Pauses []Pause
}

// Pause is one detected RR gap.
type Pause struct {
	// Start time of the gap (the preceding beat), seconds.
	Start float64
	// DurationSec of the gap.
	DurationSec float64
}

// PauseThresholdSec is the conventional Holter pause definition: an RR
// interval of at least 2 seconds.
const PauseThresholdSec = 2.0

// Analyze computes the report. Beats must be in time order; at least
// three beats are required for the variability indices.
func Analyze(beats []BeatInput) (*Report, error) {
	if len(beats) < 3 {
		return nil, fmt.Errorf("holter: %d beats, need at least 3", len(beats))
	}
	for i := 1; i < len(beats); i++ {
		if beats[i].Time <= beats[i-1].Time {
			return nil, fmt.Errorf("holter: beats not strictly ascending at index %d", i)
		}
	}
	rep := &Report{
		DurationSec: beats[len(beats)-1].Time - beats[0].Time,
		Beats:       len(beats),
	}
	for _, b := range beats {
		if b.Ventricular {
			rep.VentricularBeats++
		}
	}
	if rep.DurationSec > 0 {
		rep.VentricularPerHour = float64(rep.VentricularBeats) / rep.DurationSec * 3600
	}

	// Normal-to-normal intervals: both endpoints non-ventricular (the
	// compensatory pause around a PVC would otherwise inflate every
	// variability index).
	var nn []float64 // seconds
	for i := 1; i < len(beats); i++ {
		if beats[i].Ventricular || beats[i-1].Ventricular {
			continue
		}
		rr := beats[i].Time - beats[i-1].Time
		nn = append(nn, rr)
		if rr >= PauseThresholdSec {
			rep.Pauses = append(rep.Pauses, Pause{Start: beats[i-1].Time, DurationSec: rr})
		}
	}
	if len(nn) < 2 {
		return nil, fmt.Errorf("holter: only %d normal-to-normal intervals", len(nn))
	}
	// Rate statistics.
	minRR, maxRR := nn[0], nn[0]
	var sum float64
	for _, rr := range nn {
		sum += rr
		if rr < minRR {
			minRR = rr
		}
		if rr > maxRR {
			maxRR = rr
		}
	}
	meanRR := sum / float64(len(nn))
	rep.MeanHR = 60 / meanRR
	rep.MinHR = 60 / maxRR
	rep.MaxHR = 60 / minRR
	// SDNN.
	var ss float64
	for _, rr := range nn {
		d := rr - meanRR
		ss += d * d
	}
	rep.SDNN = math.Sqrt(ss/float64(len(nn))) * 1000
	// RMSSD and pNN50 over successive differences.
	var sq float64
	over50 := 0
	for i := 1; i < len(nn); i++ {
		d := (nn[i] - nn[i-1]) * 1000 // ms
		sq += d * d
		if math.Abs(d) > 50 {
			over50++
		}
	}
	rep.RMSSD = math.Sqrt(sq / float64(len(nn)-1))
	rep.PNN50 = float64(over50) / float64(len(nn)-1)
	return rep, nil
}

// RRHistogram bins the RR intervals (seconds) into width-sized buckets
// between lo and hi, returning bucket counts — the RR histogram printed
// on Holter summaries. Out-of-range intervals clamp to the edge buckets.
func RRHistogram(beats []BeatInput, lo, hi, width float64) ([]int, error) {
	if width <= 0 || hi <= lo {
		return nil, fmt.Errorf("holter: invalid histogram range [%v, %v] width %v", lo, hi, width)
	}
	n := int(math.Ceil((hi - lo) / width))
	counts := make([]int, n)
	for i := 1; i < len(beats); i++ {
		rr := beats[i].Time - beats[i-1].Time
		idx := int((rr - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		counts[idx]++
	}
	return counts, nil
}

// CompareReports quantifies how far a report computed on reconstructed
// data strays from the reference: the maximum relative error over the
// headline numbers (mean HR, SDNN, RMSSD, ectopic burden). Holter
// analytics surviving compression means this stays small.
func CompareReports(ref, got *Report) float64 {
	rel := func(a, b float64) float64 {
		den := math.Abs(a)
		if den < 1e-9 {
			den = 1e-9
		}
		return math.Abs(a-b) / den
	}
	worst := rel(ref.MeanHR, got.MeanHR)
	for _, v := range []float64{
		rel(ref.SDNN, got.SDNN),
		rel(ref.RMSSD, got.RMSSD),
		rel(ref.VentricularPerHour, got.VentricularPerHour),
	} {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// MedianHR returns the median heart rate in bpm over all RR intervals,
// robust to ectopy.
func MedianHR(beats []BeatInput) (float64, error) {
	if len(beats) < 2 {
		return 0, fmt.Errorf("holter: %d beats, need at least 2", len(beats))
	}
	rrs := make([]float64, 0, len(beats)-1)
	for i := 1; i < len(beats); i++ {
		rrs = append(rrs, beats[i].Time-beats[i-1].Time)
	}
	sort.Float64s(rrs)
	return 60 / rrs[len(rrs)/2], nil
}
