package holter

import (
	"math"
	"testing"

	"csecg/internal/ecg"
	"csecg/internal/rng"
)

func TestLombScargleValidation(t *testing.T) {
	if _, err := LombScargle([]float64{1, 2}, []float64{1}, []float64{0.1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := LombScargle([]float64{1, 2, 3}, []float64{1, 2, 3}, []float64{0.1}); err == nil {
		t.Error("too-few points accepted")
	}
	flat := []float64{1, 1, 1, 1, 1}
	ts := []float64{0, 1, 2, 3, 4}
	if _, err := LombScargle(ts, flat, []float64{0.1}); err == nil {
		t.Error("zero variance accepted")
	}
	if _, err := LombScargle(ts, []float64{1, 2, 1, 2, 1}, []float64{0}); err == nil {
		t.Error("zero frequency accepted")
	}
}

func TestLombScargleFindsToneOnIrregularGrid(t *testing.T) {
	// A 0.2 Hz tone sampled at jittered times must peak at 0.2 Hz.
	gen := rng.New(7)
	var ts, xs []float64
	t0 := 0.0
	for t0 < 300 {
		t0 += 0.7 + 0.3*gen.Float64() // irregular ~1 Hz sampling
		ts = append(ts, t0)
		xs = append(xs, math.Sin(2*math.Pi*0.2*t0)+0.1*gen.NormFloat64())
	}
	var freqs []float64
	for f := 0.02; f <= 0.45; f += 0.005 {
		freqs = append(freqs, f)
	}
	p, err := LombScargle(ts, xs, freqs)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := range p {
		if p[i] > p[best] {
			best = i
		}
	}
	if got := freqs[best]; math.Abs(got-0.2) > 0.01 {
		t.Errorf("peak at %.3f Hz, want 0.2", got)
	}
}

func TestAnalyzeSpectralRespirationPeak(t *testing.T) {
	// The generator couples respiration at RespRateHz into the RR series
	// (respiratory sinus arrhythmia); the spectral HRV must find it in
	// the HF band at the right frequency.
	cfg := ecg.Config{
		HeartRateBPM: 70, HRVariability: 0.02, RespRateHz: 0.25,
		AmplitudeScale: 1, Seed: 41,
	}
	sig, err := ecg.Generate(cfg, 300)
	if err != nil {
		t.Fatal(err)
	}
	var beats []BeatInput
	for _, a := range sig.Ann {
		beats = append(beats, BeatInput{Time: a.Time, Ventricular: a.Type == ecg.PVC})
	}
	res, err := AnalyzeSpectral(beats)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PeakHz-0.25) > 0.02 {
		t.Errorf("spectral peak at %.3f Hz, want the 0.25 Hz respiration", res.PeakHz)
	}
	if res.HFPower <= res.LFPower {
		t.Errorf("HF power %.3f not above LF %.3f with 0.25 Hz respiration", res.HFPower, res.LFPower)
	}
	if res.LFHFRatio >= 1 {
		t.Errorf("LF/HF ratio %.2f, want < 1", res.LFHFRatio)
	}
}

func TestAnalyzeSpectralSlowModulation(t *testing.T) {
	// Move the modulation into the LF band: the balance must flip.
	cfg := ecg.Config{
		HeartRateBPM: 70, HRVariability: 0.02, RespRateHz: 0.08,
		AmplitudeScale: 1, Seed: 42,
	}
	sig, err := ecg.Generate(cfg, 300)
	if err != nil {
		t.Fatal(err)
	}
	var beats []BeatInput
	for _, a := range sig.Ann {
		beats = append(beats, BeatInput{Time: a.Time})
	}
	res, err := AnalyzeSpectral(beats)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PeakHz-0.08) > 0.02 {
		t.Errorf("spectral peak at %.3f Hz, want 0.08", res.PeakHz)
	}
	if res.LFPower <= res.HFPower {
		t.Errorf("LF power %.3f not above HF %.3f with 0.08 Hz modulation", res.LFPower, res.HFPower)
	}
}

func TestAnalyzeSpectralValidation(t *testing.T) {
	if _, err := AnalyzeSpectral(syntheticBeats(10, 0.8, 0)); err == nil {
		t.Error("too-few beats accepted")
	}
	// All-ventricular: no NN intervals.
	if _, err := AnalyzeSpectral(syntheticBeats(40, 0.8, 1)); err == nil {
		t.Error("all-ventricular accepted")
	}
}

func BenchmarkAnalyzeSpectral5min(b *testing.B) {
	cfg := ecg.Config{
		HeartRateBPM: 70, HRVariability: 0.04, RespRateHz: 0.25,
		AmplitudeScale: 1, Seed: 43,
	}
	sig, _ := ecg.Generate(cfg, 300)
	var beats []BeatInput
	for _, a := range sig.Ann {
		beats = append(beats, BeatInput{Time: a.Time})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeSpectral(beats); err != nil {
			b.Fatal(err)
		}
	}
}
