package holter

import (
	"fmt"
	"math"
)

// Frequency-domain HRV. RR series are sampled at the (irregular) beat
// times, so the standard tool is the Lomb-Scargle periodogram, which
// handles uneven sampling without interpolation artifacts.

// Standard short-term HRV bands (Task Force of the ESC/NASPE, 1996).
const (
	// LFLow..LFHigh is the low-frequency band (sympathetic +
	// parasympathetic drive).
	LFLow  = 0.04
	LFHigh = 0.15
	// HFLow..HFHigh is the high-frequency band (respiratory sinus
	// arrhythmia).
	HFLow  = 0.15
	HFHigh = 0.40
)

// LombScargle evaluates the normalized Lomb-Scargle periodogram of the
// series (t, x) at the given frequencies (Hz). It returns an error for
// degenerate inputs (mismatched lengths, fewer than 4 points, or zero
// variance).
func LombScargle(t, x []float64, freqs []float64) ([]float64, error) {
	if len(t) != len(x) {
		return nil, fmt.Errorf("holter: time/value length mismatch %d vs %d", len(t), len(x))
	}
	if len(t) < 4 {
		return nil, fmt.Errorf("holter: %d points, need at least 4", len(t))
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	var variance float64
	centered := make([]float64, len(x))
	for i, v := range x {
		centered[i] = v - mean
		variance += centered[i] * centered[i]
	}
	variance /= float64(len(x) - 1)
	if variance == 0 {
		return nil, fmt.Errorf("holter: zero-variance series")
	}
	out := make([]float64, len(freqs))
	for k, f := range freqs {
		if f <= 0 {
			return nil, fmt.Errorf("holter: non-positive frequency %v", f)
		}
		omega := 2 * math.Pi * f
		// Time offset τ decouples the sine and cosine sums.
		var s2, c2 float64
		for _, tj := range t {
			s2 += math.Sin(2 * omega * tj)
			c2 += math.Cos(2 * omega * tj)
		}
		tau := math.Atan2(s2, c2) / (2 * omega)
		var cNum, cDen, sNum, sDen float64
		for i, tj := range t {
			arg := omega * (tj - tau)
			c := math.Cos(arg)
			s := math.Sin(arg)
			cNum += centered[i] * c
			cDen += c * c
			sNum += centered[i] * s
			sDen += s * s
		}
		p := 0.0
		if cDen > 0 {
			p += cNum * cNum / cDen
		}
		if sDen > 0 {
			p += sNum * sNum / sDen
		}
		out[k] = p / (2 * variance)
	}
	return out, nil
}

// SpectralHRV holds band powers from the RR periodogram.
type SpectralHRV struct {
	// LFPower and HFPower are the integrated normalized periodogram
	// over the standard bands.
	LFPower, HFPower float64
	// LFHFRatio is their ratio (sympathovagal balance index).
	LFHFRatio float64
	// PeakHz is the frequency of the largest periodogram value across
	// both bands.
	PeakHz float64
}

// AnalyzeSpectral computes LF/HF band powers from a beat sequence,
// using normal-to-normal intervals at their beat times. The periodogram
// is evaluated on a 0.005 Hz grid spanning both bands.
func AnalyzeSpectral(beats []BeatInput) (*SpectralHRV, error) {
	var times, rrs []float64
	for i := 1; i < len(beats); i++ {
		if beats[i].Ventricular || beats[i-1].Ventricular {
			continue
		}
		times = append(times, beats[i].Time)
		rrs = append(rrs, beats[i].Time-beats[i-1].Time)
	}
	if len(rrs) < 16 {
		return nil, fmt.Errorf("holter: %d normal-to-normal intervals, need at least 16", len(rrs))
	}
	const df = 0.005
	var freqs []float64
	for f := LFLow; f <= HFHigh+1e-9; f += df {
		freqs = append(freqs, f)
	}
	p, err := LombScargle(times, rrs, freqs)
	if err != nil {
		return nil, err
	}
	res := &SpectralHRV{}
	best := -1.0
	for i, f := range freqs {
		switch {
		case f < LFHigh:
			res.LFPower += p[i] * df
		default:
			res.HFPower += p[i] * df
		}
		if p[i] > best {
			best = p[i]
			res.PeakHz = f
		}
	}
	if res.HFPower > 0 {
		res.LFHFRatio = res.LFPower / res.HFPower
	}
	return res, nil
}
