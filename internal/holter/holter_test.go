package holter

import (
	"math"
	"testing"

	"csecg/internal/ecg"
	"csecg/internal/qrs"
)

// syntheticBeats builds a regular 75-bpm train with optional PVCs.
func syntheticBeats(n int, rr float64, pvcEvery int) []BeatInput {
	out := make([]BeatInput, n)
	t := 0.0
	for i := range out {
		vent := pvcEvery > 0 && i%pvcEvery == pvcEvery-1
		out[i] = BeatInput{Time: t, Ventricular: vent}
		t += rr
	}
	return out
}

func TestAnalyzeRegularRhythm(t *testing.T) {
	rep, err := Analyze(syntheticBeats(100, 0.8, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MeanHR-75) > 0.01 {
		t.Errorf("MeanHR = %v, want 75", rep.MeanHR)
	}
	if rep.SDNN > 1e-6 || rep.RMSSD > 1e-6 {
		t.Errorf("perfectly regular rhythm has SDNN %v RMSSD %v", rep.SDNN, rep.RMSSD)
	}
	if rep.PNN50 != 0 {
		t.Errorf("PNN50 = %v", rep.PNN50)
	}
	if rep.VentricularBeats != 0 || len(rep.Pauses) != 0 {
		t.Error("regular rhythm reported ectopy or pauses")
	}
	if math.Abs(rep.DurationSec-99*0.8) > 1e-9 {
		t.Errorf("duration %v", rep.DurationSec)
	}
}

func TestAnalyzeKnownVariability(t *testing.T) {
	// Alternating RR 0.7/0.9: mean 0.8, SDNN 100 ms, every successive
	// difference 200 ms ⇒ RMSSD 200, pNN50 = 1.
	beats := make([]BeatInput, 101)
	t0 := 0.0
	for i := range beats {
		beats[i] = BeatInput{Time: t0}
		if i%2 == 0 {
			t0 += 0.7
		} else {
			t0 += 0.9
		}
	}
	rep, err := Analyze(beats)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.SDNN-100) > 1 {
		t.Errorf("SDNN = %v, want 100", rep.SDNN)
	}
	if math.Abs(rep.RMSSD-200) > 1 {
		t.Errorf("RMSSD = %v, want 200", rep.RMSSD)
	}
	if rep.PNN50 != 1 {
		t.Errorf("PNN50 = %v, want 1", rep.PNN50)
	}
	if math.Abs(rep.MinHR-60/0.9) > 0.1 || math.Abs(rep.MaxHR-60/0.7) > 0.1 {
		t.Errorf("HR range [%v, %v]", rep.MinHR, rep.MaxHR)
	}
}

func TestVentricularBurdenAndNNExclusion(t *testing.T) {
	beats := syntheticBeats(120, 1.0, 10) // 12 PVCs over ~2 minutes
	rep, err := Analyze(beats)
	if err != nil {
		t.Fatal(err)
	}
	if rep.VentricularBeats != 12 {
		t.Errorf("VentricularBeats = %d", rep.VentricularBeats)
	}
	want := 12.0 / rep.DurationSec * 3600
	if math.Abs(rep.VentricularPerHour-want) > 0.01 {
		t.Errorf("burden %v, want %v", rep.VentricularPerHour, want)
	}
	// The train is perfectly regular, so NN-only SDNN stays ~0 even
	// though PVCs punctuate it.
	if rep.SDNN > 1e-6 {
		t.Errorf("SDNN %v should exclude PVC-adjacent intervals", rep.SDNN)
	}
}

func TestPauses(t *testing.T) {
	beats := syntheticBeats(50, 0.8, 0)
	// Insert a 2.4 s gap by shifting everything after beat 25.
	for i := 26; i < len(beats); i++ {
		beats[i].Time += 1.6
	}
	rep, err := Analyze(beats)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pauses) != 1 {
		t.Fatalf("pauses = %d, want 1", len(rep.Pauses))
	}
	if math.Abs(rep.Pauses[0].DurationSec-2.4) > 1e-9 {
		t.Errorf("pause duration %v", rep.Pauses[0].DurationSec)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Analyze([]BeatInput{{Time: 1}, {Time: 1}, {Time: 2}}); err == nil {
		t.Error("non-ascending beats accepted")
	}
	// All-ventricular leaves no NN intervals.
	bad := syntheticBeats(10, 0.8, 1)
	if _, err := Analyze(bad); err == nil {
		t.Error("all-ventricular input accepted")
	}
}

func TestRRHistogram(t *testing.T) {
	// 0.75 sits mid-bucket, away from float-rounding edge effects.
	beats := syntheticBeats(11, 0.75, 0) // 10 intervals of 0.75
	h, err := RRHistogram(beats, 0.4, 1.2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 8 {
		t.Fatalf("buckets = %d", len(h))
	}
	if h[3] != 10 { // [0.7, 0.8)
		t.Errorf("histogram = %v", h)
	}
	// Clamping.
	beats = append(beats, BeatInput{Time: beats[len(beats)-1].Time + 5})
	h, _ = RRHistogram(beats, 0.4, 1.2, 0.1)
	if h[7] != 1 {
		t.Errorf("out-of-range interval not clamped: %v", h)
	}
	if _, err := RRHistogram(beats, 1, 0.5, 0.1); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestMedianHR(t *testing.T) {
	hr, err := MedianHR(syntheticBeats(20, 0.75, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hr-80) > 0.01 {
		t.Errorf("MedianHR = %v, want 80", hr)
	}
	if _, err := MedianHR(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestCompareReports(t *testing.T) {
	a := &Report{MeanHR: 75, SDNN: 50, RMSSD: 40, VentricularPerHour: 10}
	b := &Report{MeanHR: 75, SDNN: 55, RMSSD: 40, VentricularPerHour: 10}
	if d := CompareReports(a, b); math.Abs(d-0.1) > 1e-9 {
		t.Errorf("CompareReports = %v, want 0.1", d)
	}
	if d := CompareReports(a, a); d != 0 {
		t.Errorf("self-comparison = %v", d)
	}
}

func TestEndToEndHolterAnalytics(t *testing.T) {
	// Detected beats from a PVC-rich synthetic record produce a sane
	// report matching the generator's configuration.
	rec, err := ecg.RecordByID("106")
	if err != nil {
		t.Fatal(err)
	}
	sig, err := rec.Synthesize(120)
	if err != nil {
		t.Fatal(err)
	}
	det, err := qrs.NewDetector(ecg.FsMITBIH)
	if err != nil {
		t.Fatal(err)
	}
	var beats []BeatInput
	for _, b := range det.DetectBeats(sig.MV[0]) {
		beats = append(beats, BeatInput{
			Time:        float64(b.Sample) / ecg.FsMITBIH,
			Ventricular: b.Ventricular,
		})
	}
	rep, err := Analyze(beats)
	if err != nil {
		t.Fatal(err)
	}
	// Record 106: HR 78, PVC probability 0.17.
	if rep.MeanHR < 60 || rep.MeanHR > 95 {
		t.Errorf("MeanHR %v implausible for record 106", rep.MeanHR)
	}
	if rep.VentricularPerHour < 100 {
		t.Errorf("PVC burden %v too low for a 17%%-PVC record", rep.VentricularPerHour)
	}
}
