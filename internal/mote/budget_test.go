package mote

import (
	"testing"

	"csecg/internal/core"
	"csecg/internal/huffman"
	"csecg/internal/metrics"
)

// TestBudgetLedgerMatchesFootprint pins the static //csecg:ram and
// //csecg:flash ledger constants (summed at vet time by the budget
// analyzer) to the runtime MemoryFootprint accounting at the default
// configuration with the default retransmit ring — if either side
// drifts, exactly one of the analyzer and this test would keep passing,
// so they cover each other.
func TestBudgetLedgerMatchesFootprint(t *testing.T) {
	if got := metrics.MForCR(50, core.WindowSize); got != core.DefaultMeasurements {
		t.Fatalf("core.DefaultMeasurements = %d, but MForCR(50, N) = %d", core.DefaultMeasurements, got)
	}
	m, err := New(core.Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnableRetransmitBuffer(DefaultRetransmitRing); err != nil {
		t.Fatal(err)
	}
	mem := m.MemoryFootprint()
	ledger := map[string][2]int{
		"SampleBuffers":    {RAMSampleBuffers, mem.SampleBuffers},
		"MeasurementState": {RAMMeasurementState, mem.MeasurementState},
		"SymbolScratch":    {RAMSymbolScratch, mem.SymbolScratch},
		"PacketBuffer":     {RAMPacketBuffer, mem.PacketBuffer},
		"RetransmitRing":   {RAMRetransmitRing, mem.RetransmitRing},
		"BTStack":          {RAMBTStack, mem.BTStack},
		"StackMisc":        {RAMStackMisc, mem.StackMisc},
		"CodeFlash":        {FlashCode, mem.CodeFlash},
		"CRCTableFlash":    {FlashCRCTable, mem.CRCTableFlash},
		"CodebookFlash":    {FlashCodebook, mem.CodebookFlash},
	}
	for name, v := range ledger {
		if v[0] != v[1] {
			t.Errorf("%s: ledger constant %d B, footprint %d B", name, v[0], v[1])
		}
	}
	ramSum := RAMSampleBuffers + RAMMeasurementState + RAMSymbolScratch +
		RAMPacketBuffer + RAMRetransmitRing + RAMBTStack + RAMStackMisc
	if ramSum != mem.RAMTotal() {
		t.Errorf("RAM ledger sum %d B, RAMTotal %d B", ramSum, mem.RAMTotal())
	}
	if ramSum > RAMBudget {
		t.Errorf("RAM ledger sum %d B exceeds RAMBudget %d B", ramSum, RAMBudget)
	}
	flashSum := FlashCode + FlashCRCTable + FlashCodebook
	if flashSum != mem.FlashTotal() {
		t.Errorf("flash ledger sum %d B, FlashTotal %d B", flashSum, mem.FlashTotal())
	}
	if flashSum > FlashBudget {
		t.Errorf("flash ledger sum %d B exceeds FlashBudget %d B", flashSum, FlashBudget)
	}
	if got := huffman.SerializedSize(core.NumDiffSymbols); FlashCodebook != got {
		t.Errorf("FlashCodebook = %d B, huffman.SerializedSize = %d B", FlashCodebook, got)
	}
	if FlashCodebook > CodebookFlashBudget {
		t.Errorf("codebook %d B exceeds CodebookFlashBudget %d B", FlashCodebook, CodebookFlashBudget)
	}
}
