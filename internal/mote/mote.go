// Package mote models the encoder-side embedded platform: a Shimmer-like
// wireless node built around a 16-bit MSP430-class microcontroller at
// 8 MHz with a hardware multiplier, no FPU, 10 kB RAM and 48 kB flash.
//
// The actual encoder arithmetic is executed by internal/core using
// exactly the integer operations an MSP430 build performs; this package
// adds what silicon would add — a calibrated cycle-cost model, a memory-
// footprint accountant, and the real-time/CPU-usage bookkeeping that the
// paper reports (82 ms to CS-sample a 2-second window, < 5 % average CPU,
// 6.5 kB RAM / 7.5 kB flash).
package mote

import (
	"fmt"
	"time"

	"csecg/internal/core"
	"csecg/internal/huffman"
	"csecg/internal/telemetry"
)

// ClockHz is the MSP430F1611 system clock of the Shimmer mainboard.
const ClockHz = 8_000_000

// Costs holds per-operation cycle costs of the encoder's inner loops.
// The defaults are calibrated so the measurement stage of the default
// configuration (N=512, d=12) takes the paper's measured 82 ms: the
// dominant loop regenerates one support index (LCG16 draw, multiply-
// shift range reduction, rejection bookkeeping) and performs one
// 32-bit indexed add per nonzero, on a CPU whose native word is 16 bits.
type Costs struct {
	// SupportDraw covers one LCG16 step plus range reduction via the
	// hardware multiplier and duplicate rejection.
	SupportDraw int64
	// Add32 is a 32-bit accumulate through two 16-bit adds with carry,
	// with indexed addressing on both operands.
	Add32 int64
	// LoopNonzero is the per-nonzero loop overhead (pointer updates,
	// compare, branch).
	LoopNonzero int64
	// ShiftPerMeasurement covers the rounding right-shift of one
	// measurement.
	ShiftPerMeasurement int64
	// DiffPerMeasurement covers one 32-bit subtract plus range test.
	DiffPerMeasurement int64
	// HuffmanPerSymbol covers the codebook lookup and length fetch.
	HuffmanPerSymbol int64
	// HuffmanPerBit covers shifting one bit into the output buffer.
	HuffmanPerBit int64
	// PacketPerByte covers framing/checksum per output byte.
	PacketPerByte int64
}

// DefaultCosts returns the calibrated cost set.
func DefaultCosts() Costs {
	return Costs{
		SupportDraw:         60,
		Add32:               25,
		LoopNonzero:         22,
		ShiftPerMeasurement: 12,
		DiffPerMeasurement:  18,
		HuffmanPerSymbol:    45,
		HuffmanPerBit:       6,
		PacketPerByte:       10,
	}
}

// RetransmitSlotBytes is the RAM cost of one retransmit-ring slot: the
// largest framed packet the default configuration produces (a key frame
// of 2·M bytes plus framing), matching the existing PacketBuffer
// sizing.
const RetransmitSlotBytes = 640

// DefaultRetransmitRing is the ring size the transport layer requests
// when NACK resync is enabled: 4 slots ≈ 2.5 kB, which keeps the total
// footprint inside the MSP430F1611's 10 kB RAM (see MemoryFootprint).
const DefaultRetransmitRing = 4

// moteMetrics caches the telemetry pointers the encoder records into,
// resolved once at Instrument time so the encode path stays lock-free.
// All recorded values are raw integers (cycles, bytes, counts) — float
// conversion is host-side, keeping the calls nofpu-clean.
type moteMetrics struct {
	windows, keyFrames, retransmits, txBytes        *telemetry.Counter
	encodeCycles, measureCycles, wireBytesPerWindow *telemetry.Histogram
}

// Model is an instrumented encoder: it runs the real core.Encoder and
// reports modeled MSP430 cycle counts alongside each packet.
type Model struct {
	enc   *core.Encoder
	costs Costs

	// ring holds the last len(ring) encoded packets for selective
	// retransmission (nil when the NACK protocol is disabled).
	ring        []*core.Packet
	retransmits int64
	reboots     int64

	totalCycles  int64
	totalWindows int64

	met *moteMetrics
}

// New builds a mote model around the given pipeline parameters.
func New(p core.Params) (*Model, error) {
	enc, err := core.NewEncoder(p)
	if err != nil {
		return nil, err
	}
	return &Model{enc: enc, costs: DefaultCosts()}, nil
}

// SetCosts overrides the cycle-cost calibration.
func (m *Model) SetCosts(c Costs) { m.costs = c }

// Instrument attaches session telemetry: encode-side counters and
// cycle histograms recorded on every window. A nil registry detaches.
func (m *Model) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		m.met = nil
		return
	}
	m.met = &moteMetrics{
		windows:            reg.Counter("mote_windows_total"),
		keyFrames:          reg.Counter("mote_keyframes_total"),
		retransmits:        reg.Counter("mote_retransmits_total"),
		txBytes:            reg.Counter("mote_tx_bytes_total"),
		encodeCycles:       reg.Histogram("mote_encode_cycles"),
		measureCycles:      reg.Histogram("mote_measure_cycles"),
		wireBytesPerWindow: reg.Histogram("mote_wire_bytes_per_window"),
	}
}

// Params returns the resolved pipeline parameters.
func (m *Model) Params() core.Params { return m.enc.Params() }

// Reboot models a brownout restart: volatile state is lost — the
// encoder restarts its sequence space (the next window is a seq-0 key
// frame) and the retransmit ring empties — while flash-resident state
// (codebook, CRC table, code) survives. The coordinator detects the
// wrapped sequence and resynchronizes on the boot key frame.
func (m *Model) Reboot() {
	m.enc.Reset()
	for i := range m.ring {
		m.ring[i] = nil
	}
	m.reboots++
}

// Reboots counts the modeled brownout restarts so far.
func (m *Model) Reboots() int64 { return m.reboots }

// EnableRetransmitBuffer allocates a k-slot retransmit ring holding the
// last k encoded packets for the NACK protocol. It fails if the
// resulting footprint would not fit the MSP430's RAM, or for a k
// outside [1, core.MaxNackRange]. k = 0 disables the ring.
func (m *Model) EnableRetransmitBuffer(k int) error {
	if k == 0 {
		m.ring = nil
		return nil
	}
	if k < 0 || k > core.MaxNackRange {
		return fmt.Errorf("mote: retransmit ring %d out of [0, %d]", k, core.MaxNackRange)
	}
	old := m.ring
	m.ring = make([]*core.Packet, k)
	if err := m.CheckFits(); err != nil {
		m.ring = old
		return fmt.Errorf("mote: retransmit ring %d slots: %w", k, err)
	}
	return nil
}

// RetransmitRing returns the configured ring size in packets.
func (m *Model) RetransmitRing() int { return len(m.ring) }

// Retransmit fetches the packet with the given sequence number from the
// ring, charging the re-framing cycles the UART feed costs. It returns
// false when the packet has aged out of the ring (the coordinator must
// fall back to a key-frame request).
func (m *Model) Retransmit(seq uint32) (*core.Packet, bool) {
	if len(m.ring) == 0 {
		return nil, false
	}
	p := m.ring[int(seq)%len(m.ring)]
	if p == nil || p.Seq != seq {
		return nil, false
	}
	m.retransmits++
	m.totalCycles += int64(p.WireSize()) * m.costs.PacketPerByte
	if m.met != nil {
		m.met.retransmits.Inc()
		m.met.txBytes.Add(int64(p.WireSize()))
	}
	return p, true
}

// Retransmits counts the ring hits served so far.
func (m *Model) Retransmits() int64 { return m.retransmits }

// RequestKeyFrame promotes the next encoded window to a key frame — the
// mote's response to a KindKeyRequest control packet.
func (m *Model) RequestKeyFrame() { m.enc.ForceKeyFrame() }

// Report describes the modeled execution of one window.
type Report struct {
	// Packet is the encoded output.
	Packet *core.Packet
	// MeasureCycles, ShiftCycles, DiffCycles, EntropyCycles and
	// FramingCycles break down the stage costs.
	MeasureCycles, ShiftCycles, DiffCycles, EntropyCycles, FramingCycles int64
	// TotalCycles is the window's full encode cost.
	TotalCycles int64
	// EncodeTime is TotalCycles at the 8 MHz clock.
	EncodeTime time.Duration
	// CPUUsage is EncodeTime over the 2-second window period.
	//csecg:host modeled utilization, computed by the host-side cost model
	CPUUsage float64
	// RealTime reports whether the encode fits in the window period.
	RealTime bool
}

// EncodeWindow compresses one window and reports the modeled cost.
func (m *Model) EncodeWindow(window []int16) (*Report, error) {
	pkt, err := m.enc.EncodeWindow(window)
	if err != nil {
		return nil, err
	}
	// The encoder returns its single TX buffer; clone once so the report
	// and the retransmit ring own this window's bytes.
	pkt = pkt.Clone()
	p := m.enc.Params()
	c := m.costs
	nnz := int64(p.N) * int64(p.D)
	r := &Report{Packet: pkt}
	r.MeasureCycles = nnz * (c.SupportDraw + c.Add32 + c.LoopNonzero)
	r.ShiftCycles = int64(p.M) * c.ShiftPerMeasurement
	if pkt.Kind == core.KindDelta {
		r.DiffCycles = int64(p.M) * c.DiffPerMeasurement
		payloadBits := int64(len(pkt.Payload)) * 8
		r.EntropyCycles = int64(pkt.NumSymbols)*c.HuffmanPerSymbol + payloadBits*c.HuffmanPerBit
	}
	r.FramingCycles = int64(pkt.WireSize()) * c.PacketPerByte
	r.TotalCycles = r.MeasureCycles + r.ShiftCycles + r.DiffCycles + r.EntropyCycles + r.FramingCycles
	if len(m.ring) > 0 {
		m.ring[int(pkt.Seq)%len(m.ring)] = pkt
	}
	if m.met != nil {
		m.met.windows.Inc()
		if pkt.Kind == core.KindKey {
			m.met.keyFrames.Inc()
		}
		m.met.txBytes.Add(int64(pkt.WireSize()))
		m.met.encodeCycles.Observe(r.TotalCycles)
		m.met.measureCycles.Observe(r.MeasureCycles + r.ShiftCycles)
		m.met.wireBytesPerWindow.Observe(int64(pkt.WireSize()))
	}
	r.EncodeTime = time.Duration(float64(r.TotalCycles) / ClockHz * float64(time.Second)) //csecg:host cycle→time accounting
	window2s := float64(p.N) / core.FsMote                                                //csecg:host cycle→time accounting
	r.CPUUsage = r.EncodeTime.Seconds() / window2s                                        //csecg:host cycle→time accounting
	r.RealTime = r.EncodeTime.Seconds() <= window2s                                       //csecg:host cycle→time accounting
	m.totalCycles += r.TotalCycles
	m.totalWindows++
	return r, nil
}

// AverageCPUUsage returns the mean CPU usage over all encoded windows.
//
//csecg:host cycle/energy accounting runs on the host model
func (m *Model) AverageCPUUsage() float64 {
	if m.totalWindows == 0 {
		return 0
	}
	p := m.enc.Params()
	window := float64(p.N) / core.FsMote
	return float64(m.totalCycles) / ClockHz / (float64(m.totalWindows) * window)
}

// MeasurementLatency returns the modeled time of the CS measurement
// stage alone — the figure the paper quotes as "a 2-second vector is now
// CS-sampled in 82 ms" for d = 12.
//
//csecg:host cycle/energy accounting runs on the host model
func (m *Model) MeasurementLatency() time.Duration {
	p := m.enc.Params()
	c := m.costs
	nnz := int64(p.N) * int64(p.D)
	cycles := nnz * (c.SupportDraw + c.Add32 + c.LoopNonzero)
	return time.Duration(float64(cycles) / ClockHz * float64(time.Second))
}

// Memory describes the static footprint of the encoder build.
type Memory struct {
	// RAM components (bytes). RetransmitRing is zero unless the NACK
	// protocol's ring buffer is enabled.
	SampleBuffers, MeasurementState, SymbolScratch, PacketBuffer, RetransmitRing, BTStack, StackMisc int
	// Flash components (bytes).
	CodeFlash, CRCTableFlash, CodebookFlash int
}

// RAMTotal sums the RAM components.
func (mem Memory) RAMTotal() int {
	return mem.SampleBuffers + mem.MeasurementState + mem.SymbolScratch +
		mem.PacketBuffer + mem.RetransmitRing + mem.BTStack + mem.StackMisc
}

// FlashTotal sums the flash components.
func (mem Memory) FlashTotal() int { return mem.CodeFlash + mem.CRCTableFlash + mem.CodebookFlash }

// MemoryFootprint accounts the encoder's RAM and flash consumption for
// the configured parameters, mirroring the paper's 6.5 kB RAM / 7.5 kB
// flash (1.5 kB of it codebook) budget at the default configuration.
func (m *Model) MemoryFootprint() Memory {
	p := m.enc.Params()
	return Memory{
		// Double-buffered 2-second sample window (ping-pong so the ADC
		// fills one while the other is encoded).
		SampleBuffers: 2 * p.N * 2,
		// Current and previous measurement vectors, 16-bit after the
		// LSB drop.
		MeasurementState: 2 * p.M * 2,
		// Difference/symbol scratch shared with the bit writer.
		SymbolScratch: p.M * 2,
		// One framed packet in flight to the Bluetooth module.
		PacketBuffer: RAMPacketBuffer,
		// Bounded retransmit ring of the NACK protocol (0 when
		// disabled, the paper's baseline build).
		RetransmitRing: len(m.ring) * RetransmitSlotBytes,
		// Bluetooth stack working set (connection state, FIFO).
		BTStack: RAMBTStack,
		// Call stack and globals of the remaining firmware.
		StackMisc: RAMStackMisc,
		// Encoder code: measurement, difference, entropy and framing
		// stages plus drivers.
		CodeFlash: FlashCode,
		// Byte-indexed CRC-16/CCITT lookup table used by the packet
		// framer (generated offline, flashed with the firmware).
		CRCTableFlash: FlashCRCTable,
		// Offline-trained codebook: 1 kB codewords + 512 B lengths
		// (+4 B header), the layout of huffman.Serialize.
		CodebookFlash: huffman.SerializedSize(core.NumDiffSymbols),
	}
}

// CheckFits verifies the footprint against the MSP430F1611's 10 kB RAM
// and 48 kB flash.
func (m *Model) CheckFits() error {
	mem := m.MemoryFootprint()
	const ramLimit, flashLimit = RAMBudget, FlashBudget
	if mem.RAMTotal() > ramLimit {
		return fmt.Errorf("mote: RAM footprint %d B exceeds %d B", mem.RAMTotal(), ramLimit)
	}
	if mem.FlashTotal() > flashLimit {
		return fmt.Errorf("mote: flash footprint %d B exceeds %d B", mem.FlashTotal(), flashLimit)
	}
	return nil
}
