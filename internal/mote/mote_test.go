package mote

import (
	"testing"
	"time"

	"csecg/internal/core"
	"csecg/internal/ecg"
)

func testWindow(t testing.TB) []int16 {
	t.Helper()
	rec, err := ecg.RecordByID("100")
	if err != nil {
		t.Fatal(err)
	}
	samples, err := rec.Channel256(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	return samples[:core.WindowSize]
}

func TestMeasurementLatencyMatchesPaper(t *testing.T) {
	m, err := New(core.Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: a 2-second vector is CS-sampled in 82 ms at d=12.
	lat := m.MeasurementLatency()
	if lat < 70*time.Millisecond || lat > 95*time.Millisecond {
		t.Errorf("measurement latency %v, want ≈82 ms", lat)
	}
}

func TestCPUUsageUnderFivePercent(t *testing.T) {
	m, err := New(core.Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	win := testWindow(t)
	for i := 0; i < 5; i++ {
		rep, err := m.EncodeWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.RealTime {
			t.Fatalf("window %d not real-time: %v", i, rep.EncodeTime)
		}
	}
	if u := m.AverageCPUUsage(); u >= 0.05 {
		t.Errorf("average CPU usage %.1f%%, paper reports < 5%%", u*100)
	} else if u <= 0.01 {
		t.Errorf("average CPU usage %.1f%% implausibly low for the calibration", u*100)
	}
}

func TestLatencyScalesWithColumnWeight(t *testing.T) {
	lat := func(d int) time.Duration {
		m, err := New(core.Params{Seed: 1, D: d})
		if err != nil {
			t.Fatal(err)
		}
		return m.MeasurementLatency()
	}
	l6, l12, l24 := lat(6), lat(12), lat(24)
	if !(l6 < l12 && l12 < l24) {
		t.Errorf("latency not monotone in d: %v, %v, %v", l6, l12, l24)
	}
	// Linear in d: doubling d doubles the measurement work.
	if ratio := float64(l24) / float64(l12); ratio < 1.9 || ratio > 2.1 {
		t.Errorf("latency ratio d=24/d=12 = %v, want ≈2", ratio)
	}
}

func TestReportBreakdownConsistent(t *testing.T) {
	m, _ := New(core.Params{Seed: 3})
	win := testWindow(t)
	// First window is a key frame: no diff/entropy cycles.
	rep, err := m.EncodeWindow(win)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Packet.Kind != core.KindKey {
		t.Fatal("first packet not key")
	}
	if rep.DiffCycles != 0 || rep.EntropyCycles != 0 {
		t.Error("key frame charged diff/entropy cycles")
	}
	sum := rep.MeasureCycles + rep.ShiftCycles + rep.DiffCycles + rep.EntropyCycles + rep.FramingCycles
	if sum != rep.TotalCycles {
		t.Errorf("breakdown sum %d != total %d", sum, rep.TotalCycles)
	}
	// Second window is a delta frame: diff and entropy show up.
	rep2, err := m.EncodeWindow(win)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Packet.Kind != core.KindDelta {
		t.Fatal("second packet not delta")
	}
	if rep2.DiffCycles == 0 || rep2.EntropyCycles == 0 {
		t.Error("delta frame missing diff/entropy cycles")
	}
}

func TestMemoryFootprintMatchesPaper(t *testing.T) {
	m, _ := New(core.Params{Seed: 1})
	mem := m.MemoryFootprint()
	// Paper: 6.5 kB RAM, 7.5 kB flash of which 1.5 kB codebook.
	ram := mem.RAMTotal()
	if ram < 6000 || ram > 7200 {
		t.Errorf("RAM footprint %d B, want ≈6.5 kB", ram)
	}
	flash := mem.FlashTotal()
	if flash < 7000 || flash > 8200 {
		t.Errorf("flash footprint %d B, want ≈7.5 kB", flash)
	}
	if cb := mem.CodebookFlash; cb < 1500 || cb > 1600 {
		t.Errorf("codebook flash %d B, want ≈1.5 kB", cb)
	}
	if err := m.CheckFits(); err != nil {
		t.Errorf("default build does not fit the MSP430: %v", err)
	}
}

func TestCheckFitsRejectsOversize(t *testing.T) {
	// A very long window with many measurements blows the RAM budget.
	m, err := New(core.Params{N: 8192, M: 4096, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckFits(); err == nil {
		t.Error("oversized configuration passed CheckFits")
	}
}

func TestAverageCPUUsageEmpty(t *testing.T) {
	m, _ := New(core.Params{Seed: 1})
	if u := m.AverageCPUUsage(); u != 0 {
		t.Errorf("empty model CPU usage %v", u)
	}
}

func BenchmarkInstrumentedEncode(b *testing.B) {
	m, _ := New(core.Params{Seed: 1})
	win := testWindow(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.EncodeWindow(win); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRetransmitRing(t *testing.T) {
	m, err := New(core.Params{Seed: 9, KeyFrameInterval: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Retransmit(0); ok {
		t.Error("disabled ring served a packet")
	}
	if err := m.EnableRetransmitBuffer(4); err != nil {
		t.Fatal(err)
	}
	if m.RetransmitRing() != 4 {
		t.Errorf("ring size %d, want 4", m.RetransmitRing())
	}
	mem := m.MemoryFootprint()
	if mem.RetransmitRing != 4*RetransmitSlotBytes {
		t.Errorf("ring RAM %d, want %d", mem.RetransmitRing, 4*RetransmitSlotBytes)
	}
	if err := m.CheckFits(); err != nil {
		t.Errorf("4-slot ring should fit the RAM budget: %v", err)
	}

	win := make([]int16, m.Params().N)
	for i := range win {
		win[i] = 1024
	}
	var pkts []*core.Packet
	for i := 0; i < 6; i++ {
		r, err := m.EncodeWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, r.Packet)
	}
	// The last 4 packets are retransmittable, older ones aged out.
	for seq := uint32(2); seq < 6; seq++ {
		p, ok := m.Retransmit(seq)
		if !ok {
			t.Fatalf("seq %d missing from a 4-slot ring after 6 windows", seq)
		}
		if p.Seq != seq || p.Kind != pkts[seq].Kind {
			t.Errorf("ring returned seq %d kind %v for request %d", p.Seq, p.Kind, seq)
		}
	}
	for _, seq := range []uint32{0, 1, 6, 99} {
		if _, ok := m.Retransmit(seq); ok {
			t.Errorf("ring served aged-out/unsent seq %d", seq)
		}
	}
	if m.Retransmits() != 4 {
		t.Errorf("retransmit counter %d, want 4", m.Retransmits())
	}
}

func TestRetransmitRingRAMBudget(t *testing.T) {
	m, err := New(core.Params{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// 8 slots would cost 5 kB on top of the 6.5 kB baseline: over budget.
	if err := m.EnableRetransmitBuffer(core.MaxNackRange); err == nil {
		t.Error("over-budget ring accepted")
	}
	if m.RetransmitRing() != 0 {
		t.Error("failed enable left the ring allocated")
	}
	if err := m.EnableRetransmitBuffer(-1); err == nil {
		t.Error("negative ring accepted")
	}
	if err := m.EnableRetransmitBuffer(DefaultRetransmitRing); err != nil {
		t.Errorf("default ring rejected: %v", err)
	}
	if err := m.EnableRetransmitBuffer(0); err != nil || m.RetransmitRing() != 0 {
		t.Error("ring not disabled by k=0")
	}
}

func TestRequestKeyFrame(t *testing.T) {
	m, err := New(core.Params{Seed: 9, KeyFrameInterval: 64})
	if err != nil {
		t.Fatal(err)
	}
	win := make([]int16, m.Params().N)
	if r, _ := m.EncodeWindow(win); r.Packet.Kind != core.KindKey {
		t.Fatal("first packet not key")
	}
	if r, _ := m.EncodeWindow(win); r.Packet.Kind != core.KindDelta {
		t.Fatal("second packet not delta")
	}
	m.RequestKeyFrame()
	if r, _ := m.EncodeWindow(win); r.Packet.Kind != core.KindKey {
		t.Error("key request not honored")
	}
}

func TestRebootRestartsSequenceAndClearsRing(t *testing.T) {
	m, err := New(core.Params{Seed: 1, KeyFrameInterval: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnableRetransmitBuffer(4); err != nil {
		t.Fatal(err)
	}
	win := testWindow(t)
	var last *core.Packet
	for i := 0; i < 5; i++ {
		rep, err := m.EncodeWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		last = rep.Packet
	}
	if last.Seq != 4 {
		t.Fatalf("pre-reboot seq = %d, want 4", last.Seq)
	}
	if _, ok := m.Retransmit(4); !ok {
		t.Fatal("ring empty before reboot")
	}
	m.Reboot()
	if m.Reboots() != 1 {
		t.Fatalf("Reboots = %d, want 1", m.Reboots())
	}
	for seq := uint32(1); seq <= 4; seq++ {
		if _, ok := m.Retransmit(seq); ok {
			t.Fatalf("seq %d survived the reboot in the retransmit ring", seq)
		}
	}
	rep, err := m.EncodeWindow(win)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Packet.Seq != 0 || rep.Packet.Kind != core.KindKey {
		t.Fatalf("first post-reboot window seq=%d kind=%v, want a seq-0 key frame",
			rep.Packet.Seq, rep.Packet.Kind)
	}
}
