package mote

import "csecg/internal/core"

// Static memory budget of the default firmware build, enforced at vet
// time: the budget analyzer (internal/analysis, run by cmd/csecg-vet)
// sums every constant marked //csecg:ram or //csecg:flash below and
// fails if a ledger exceeds its budget constant. The ledger mirrors
// MemoryFootprint() at the default configuration (N = 512, M = 256,
// 4-slot retransmit ring); TestBudgetLedgerMatchesFootprint pins the
// two together so neither can drift silently.
//
// The MSP430F1611 provides 10 kB RAM and 48 kB flash; the paper reports
// the firmware using 6.5 kB RAM and 7.5 kB flash, ~1.5 kB of which is
// the Huffman codebook. Our build adds the PR 1 retransmit ring on top
// of the paper's baseline and must still clear the hardware limits.
const (
	// RAMBudget is the MSP430F1611 SRAM size.
	RAMBudget = 10 * 1024
	// FlashBudget is the MSP430F1611 flash size.
	FlashBudget = 48 * 1024
	// CodebookFlashBudget caps the serialized codebook at the paper's
	// ≈1.5 kB figure: a 4-byte header, 2-byte codewords and 1-byte
	// lengths for the 512-symbol difference alphabet.
	CodebookFlashBudget = 4 + 3*core.NumDiffSymbols
)

// RAM ledger (bytes), one constant per MemoryFootprint component.
const (
	RAMSampleBuffers    = 2 * core.WindowSize * 2                     //csecg:ram ping-pong int16 sample windows
	RAMMeasurementState = 2 * core.DefaultMeasurements * 2            //csecg:ram current+previous measurement vectors
	RAMSymbolScratch    = core.DefaultMeasurements * 2                //csecg:ram difference/symbol scratch
	RAMPacketBuffer     = 640                                         //csecg:ram one framed packet in flight
	RAMRetransmitRing   = DefaultRetransmitRing * RetransmitSlotBytes //csecg:ram NACK retransmit ring (PR 1)
	RAMBTStack          = 1536                                        //csecg:ram Bluetooth stack working set
	RAMStackMisc        = 896                                         //csecg:ram call stack and globals
)

// Flash ledger (bytes).
const (
	FlashCode     = 6 * 1024                  //csecg:flash encoder stages plus drivers
	FlashCRCTable = 256 * 2                   //csecg:flash CRC-16/CCITT lookup table (256 × uint16)
	FlashCodebook = 4 + 3*core.NumDiffSymbols //csecg:codebookflash serialized Huffman codebook
)
