// Package energy models the mote's battery budget and estimates node
// lifetime, reproducing the paper's headline energy result: compressing
// with CS before the radio extends node lifetime by ≈12.9 % at CR = 50
// relative to streaming uncompressed samples.
//
// The model is a standard duty-cycle current budget: a base current that
// flows regardless (MCU in its sensing loop, ADC, Bluetooth connection
// maintenance in sniff mode), a radio transmit surcharge proportional to
// airtime, and a CPU surcharge proportional to encoder busy time. The
// default constants are Shimmer-class: a 450 mAh Li-polymer cell, a
// class-2 Bluetooth module drawing ≈40 mA extra while transmitting, and
// a low-MHz MSP430 whose active-mode surcharge is a few mA.
package energy

import (
	"fmt"
	"time"
)

// Budget holds the platform's electrical constants.
type Budget struct {
	// BatteryMAh is the cell capacity.
	BatteryMAh float64
	// BaseCurrentMA flows continuously: MCU sensing loop + ADC +
	// Bluetooth connection maintenance.
	BaseCurrentMA float64
	// RadioTxExtraMA is the additional draw while the radio transmits.
	RadioTxExtraMA float64
	// CPUActiveExtraMA is the additional draw while the MCU runs the
	// encoder at full clock (vs its idle sensing loop).
	CPUActiveExtraMA float64
}

// DefaultBudget returns Shimmer-class constants.
func DefaultBudget() Budget {
	return Budget{
		BatteryMAh:       450,
		BaseCurrentMA:    5.15,
		RadioTxExtraMA:   40,
		CPUActiveExtraMA: 3,
	}
}

// Validate reports parameter errors.
func (b Budget) Validate() error {
	if b.BatteryMAh <= 0 || b.BaseCurrentMA <= 0 || b.RadioTxExtraMA < 0 || b.CPUActiveExtraMA < 0 {
		return fmt.Errorf("energy: non-physical budget %+v", b)
	}
	return nil
}

// Load is one operating point: the duty cycles of the radio and the CPU.
type Load struct {
	// RadioDuty is the fraction of time the radio transmits.
	RadioDuty float64
	// CPUDuty is the fraction of time the MCU runs the encoder.
	CPUDuty float64
}

// Validate reports load errors.
func (l Load) Validate() error {
	if l.RadioDuty < 0 || l.RadioDuty > 1 || l.CPUDuty < 0 || l.CPUDuty > 1 {
		return fmt.Errorf("energy: duty cycles out of [0, 1]: %+v", l)
	}
	return nil
}

// AverageCurrentMA returns the mean current at the operating point.
func (b Budget) AverageCurrentMA(l Load) float64 {
	return b.BaseCurrentMA + b.RadioTxExtraMA*l.RadioDuty + b.CPUActiveExtraMA*l.CPUDuty
}

// Lifetime returns the modeled node lifetime at the operating point.
func (b Budget) Lifetime(l Load) (time.Duration, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if err := l.Validate(); err != nil {
		return 0, err
	}
	hours := b.BatteryMAh / b.AverageCurrentMA(l)
	return time.Duration(hours * float64(time.Hour)), nil
}

// LifetimeExtension returns the relative lifetime gain of the compressed
// operating point over the baseline: lifetime(cs)/lifetime(raw) − 1.
func (b Budget) LifetimeExtension(raw, cs Load) (float64, error) {
	lr, err := b.Lifetime(raw)
	if err != nil {
		return 0, err
	}
	lc, err := b.Lifetime(cs)
	if err != nil {
		return 0, err
	}
	return lc.Seconds()/lr.Seconds() - 1, nil
}

// LoadFromAirtime builds a Load from per-window figures: the airtime and
// encoder busy time spent for each window of windowSeconds.
func LoadFromAirtime(airtimePerWindow, cpuPerWindow time.Duration, windowSeconds float64) (Load, error) {
	if windowSeconds <= 0 {
		return Load{}, fmt.Errorf("energy: window %v must be positive", windowSeconds)
	}
	l := Load{
		RadioDuty: airtimePerWindow.Seconds() / windowSeconds,
		CPUDuty:   cpuPerWindow.Seconds() / windowSeconds,
	}
	if err := l.Validate(); err != nil {
		return Load{}, err
	}
	return l, nil
}
