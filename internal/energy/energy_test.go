package energy

import (
	"math"
	"testing"
	"time"
)

func TestAverageCurrent(t *testing.T) {
	b := Budget{BatteryMAh: 100, BaseCurrentMA: 5, RadioTxExtraMA: 40, CPUActiveExtraMA: 2}
	got := b.AverageCurrentMA(Load{RadioDuty: 0.1, CPUDuty: 0.5})
	want := 5 + 4 + 1.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("AverageCurrentMA = %v, want %v", got, want)
	}
}

func TestLifetime(t *testing.T) {
	b := Budget{BatteryMAh: 100, BaseCurrentMA: 10}
	lt, err := b.Lifetime(Load{})
	if err != nil {
		t.Fatal(err)
	}
	if lt != 10*time.Hour {
		t.Errorf("Lifetime = %v, want 10h", lt)
	}
}

func TestValidation(t *testing.T) {
	if _, err := (Budget{}).Lifetime(Load{}); err == nil {
		t.Error("zero budget accepted")
	}
	b := DefaultBudget()
	if _, err := b.Lifetime(Load{RadioDuty: 1.5}); err == nil {
		t.Error("duty > 1 accepted")
	}
	if _, err := b.Lifetime(Load{CPUDuty: -0.1}); err == nil {
		t.Error("negative duty accepted")
	}
}

func TestLifetimeExtensionPaperOperatingPoint(t *testing.T) {
	// Paper: 12.9% lifetime extension at CR = 50 vs streaming raw.
	// Raw streaming: 768 B windows (512 samples × 12 bits) every 2 s at
	// ≈90 kbit/s with overhead → ≈70 ms airtime, no encoder CPU.
	// CS at CR=50 overall ≈72%: ≈190 B wire packets → ≈18 ms airtime,
	// ≈4.2% encoder CPU.
	b := DefaultBudget()
	raw := Load{RadioDuty: 0.0695 / 2, CPUDuty: 0}
	cs := Load{RadioDuty: 0.018 / 2, CPUDuty: 0.042}
	ext, err := b.LifetimeExtension(raw, cs)
	if err != nil {
		t.Fatal(err)
	}
	if ext < 0.08 || ext > 0.18 {
		t.Errorf("lifetime extension %.1f%%, paper reports 12.9%%", ext*100)
	}
	t.Logf("modeled lifetime extension: %.1f%%", ext*100)
}

func TestLifetimeMonotoneInRadioDuty(t *testing.T) {
	b := DefaultBudget()
	prev := time.Duration(math.MaxInt64)
	for duty := 0.0; duty <= 0.5; duty += 0.05 {
		lt, err := b.Lifetime(Load{RadioDuty: duty})
		if err != nil {
			t.Fatal(err)
		}
		if lt >= prev {
			t.Fatalf("lifetime not strictly decreasing at duty %v", duty)
		}
		prev = lt
	}
}

func TestLoadFromAirtime(t *testing.T) {
	l, err := LoadFromAirtime(20*time.Millisecond, 80*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.RadioDuty-0.01) > 1e-12 || math.Abs(l.CPUDuty-0.04) > 1e-12 {
		t.Errorf("LoadFromAirtime = %+v", l)
	}
	if _, err := LoadFromAirtime(time.Second, 0, 0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := LoadFromAirtime(3*time.Second, 0, 2); err == nil {
		t.Error("duty > 1 accepted")
	}
}

func TestDefaultBudgetSane(t *testing.T) {
	b := DefaultBudget()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Streaming-raw lifetime should land in the multi-day Holter range.
	lt, err := b.Lifetime(Load{RadioDuty: 0.035})
	if err != nil {
		t.Fatal(err)
	}
	if lt < 48*time.Hour || lt > 120*time.Hour {
		t.Errorf("raw-streaming lifetime %v outside the plausible 2-5 day range", lt)
	}
}
