package session

import (
	"testing"

	"csecg/internal/core"
	"csecg/internal/ecg"
	"csecg/internal/metrics"
)

func bothChannels(t testing.TB, seconds float64) (ch0, ch1 []int16) {
	t.Helper()
	rec, err := ecg.RecordByID("100")
	if err != nil {
		t.Fatal(err)
	}
	ch0, err = rec.Channel256(seconds, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch1, err = rec.Channel256(seconds, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ch0, ch1
}

func TestValidation(t *testing.T) {
	if _, err := NewEncoder(core.Params{Seed: 1}, 0); err == nil {
		t.Error("0 leads accepted")
	}
	if _, err := NewEncoder(core.Params{Seed: 1}, MaxLeads+1); err == nil {
		t.Error("too many leads accepted")
	}
	if _, err := NewDecoder[float64](core.Params{Seed: 1}, 0); err == nil {
		t.Error("0-lead decoder accepted")
	}
	enc, err := NewEncoder(core.Params{Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Leads() != 2 {
		t.Errorf("Leads = %d", enc.Leads())
	}
	if _, err := enc.EncodeWindows(make([][]int16, 3)); err == nil {
		t.Error("window/lead count mismatch accepted")
	}
}

func TestLeadSeedsDiffer(t *testing.T) {
	base := core.Params{Seed: 7}
	if leadParams(base, 0).Seed == leadParams(base, 1).Seed {
		t.Error("leads share a sensing seed")
	}
}

func TestFrameRoundTripAndValidation(t *testing.T) {
	f := &Frame{Lead: 1, Packet: &core.Packet{Seq: 3, Kind: core.KindKey, Payload: []byte{9}}}
	blob, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := UnmarshalFrame(blob)
	if err != nil || n != len(blob) {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Lead != 1 || got.Packet.Seq != 3 {
		t.Errorf("mismatch: %+v", got)
	}
	if _, _, err := UnmarshalFrame(nil); err == nil {
		t.Error("empty frame accepted")
	}
	blob[0] = MaxLeads
	if _, _, err := UnmarshalFrame(blob); err == nil {
		t.Error("out-of-range lead accepted")
	}
}

func TestTwoLeadSessionEndToEnd(t *testing.T) {
	base := core.Params{Seed: 21, M: metrics.MForCR(50, core.WindowSize)}
	enc, err := NewEncoder(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder[float64](base, 2)
	if err != nil {
		t.Fatal(err)
	}
	ch0, ch1 := bothChannels(t, 10)
	var prdn [2][]float64
	for o := 0; o+core.WindowSize <= len(ch0) && o+core.WindowSize <= len(ch1); o += core.WindowSize {
		wins := [][]int16{ch0[o : o+core.WindowSize], ch1[o : o+core.WindowSize]}
		frames, err := enc.EncodeWindows(wins)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range frames {
			blob, err := f.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			rx, _, err := UnmarshalFrame(blob)
			if err != nil {
				t.Fatal(err)
			}
			res, err := dec.DecodeFrame(rx)
			if err != nil {
				t.Fatal(err)
			}
			if o == 0 {
				continue
			}
			win := wins[rx.Lead]
			orig := make([]float64, len(win))
			reco := make([]float64, len(win))
			for i := range win {
				orig[i] = float64(win[i])
				reco[i] = float64(res.Samples[i])
			}
			p, err := metrics.PRDN(orig, reco)
			if err != nil {
				t.Fatal(err)
			}
			prdn[rx.Lead] = append(prdn[rx.Lead], p)
		}
	}
	for lead := 0; lead < 2; lead++ {
		if len(prdn[lead]) == 0 {
			t.Fatalf("lead %d produced no quality samples", lead)
		}
		var mean float64
		for _, p := range prdn[lead] {
			mean += p
		}
		mean /= float64(len(prdn[lead]))
		if mean > 20 {
			t.Errorf("lead %d mean PRDN %.2f too high", lead, mean)
		}
	}
}

func TestLeadsFailIndependently(t *testing.T) {
	base := core.Params{Seed: 5, KeyFrameInterval: 4}
	enc, _ := NewEncoder(base, 2)
	dec, _ := NewDecoder[float64](base, 2)
	for l := 0; l < 2; l++ {
		d, err := dec.Tune(l)
		if err != nil {
			t.Fatal(err)
		}
		d.SolverOptions.MaxIter = 1
	}
	ch0, ch1 := bothChannels(t, 16)
	var allFrames [][]*Frame
	for o := 0; o+core.WindowSize <= len(ch0); o += core.WindowSize {
		frames, err := enc.EncodeWindows([][]int16{ch0[o : o+core.WindowSize], ch1[o : o+core.WindowSize]})
		if err != nil {
			t.Fatal(err)
		}
		allFrames = append(allFrames, frames)
	}
	if len(allFrames) < 6 {
		t.Fatal("need more windows")
	}
	// Deliver everything except lead 1's window-1 frame: lead 0 keeps
	// decoding, lead 1 rejects until its key frame at window 4.
	lead1Errors := 0
	for w, frames := range allFrames {
		for _, f := range frames {
			if w == 1 && f.Lead == 1 {
				continue // lost
			}
			_, err := dec.DecodeFrame(f)
			if f.Lead == 0 && err != nil {
				t.Fatalf("lead 0 window %d: %v", w, err)
			}
			if f.Lead == 1 && err != nil {
				lead1Errors++
				if w >= 4 {
					t.Fatalf("lead 1 still failing at window %d after key frame: %v", w, err)
				}
			}
		}
	}
	if lead1Errors == 0 {
		t.Error("lead 1 never noticed the loss")
	}
	if _, err := dec.DecodeFrame(&Frame{Lead: 5, Packet: &core.Packet{Kind: core.KindKey}}); err == nil {
		t.Error("unknown lead accepted")
	}
	if _, err := dec.Tune(9); err == nil {
		t.Error("Tune out of range accepted")
	}
}
