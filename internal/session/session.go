// Package session multiplexes several ECG leads over one link — the
// multi-lead ambulatory scenario of the paper's introduction (3-lead
// Holter replacement). Each lead runs its own pipeline instance with a
// lead-specific sensing matrix (derived deterministically from the base
// seed), and frames carry a one-byte lead tag, so a single Bluetooth
// stream interleaves all leads and each one degrades independently
// under loss.
package session

import (
	"fmt"

	"csecg/internal/core"
	"csecg/internal/linalg"
)

// MaxLeads bounds the lead count (one byte of tag space is plenty; real
// systems use 1-12).
const MaxLeads = 16

// Frame is one lead-tagged pipeline packet.
type Frame struct {
	// Lead indexes the session's lead set.
	Lead uint8
	// Packet is the wrapped pipeline packet.
	Packet *core.Packet
}

// Marshal serializes the frame (lead byte + packet wire format).
func (f *Frame) Marshal() ([]byte, error) {
	pkt, err := f.Packet.Marshal()
	if err != nil {
		return nil, err
	}
	out := make([]byte, 1+len(pkt))
	out[0] = f.Lead
	copy(out[1:], pkt)
	return out, nil
}

// UnmarshalFrame parses one frame, returning it and the bytes consumed.
func UnmarshalFrame(data []byte) (*Frame, int, error) {
	if len(data) < 1 {
		return nil, 0, fmt.Errorf("session: empty frame")
	}
	if data[0] >= MaxLeads {
		return nil, 0, fmt.Errorf("session: lead tag %d out of range", data[0])
	}
	pkt, n, err := core.UnmarshalPacket(data[1:])
	if err != nil {
		return nil, 0, err
	}
	return &Frame{Lead: data[0], Packet: pkt}, 1 + n, nil
}

// leadParams derives lead l's parameters: a distinct sensing matrix per
// lead (seed offset) with everything else shared.
func leadParams(base core.Params, l int) core.Params {
	p := base
	p.Seed = base.Seed + uint16(l)*0x9E37 // odd stride decorrelates supports
	return p
}

// Encoder compresses a fixed set of leads.
type Encoder struct {
	encs []*core.Encoder
}

// NewEncoder builds one pipeline encoder per lead.
func NewEncoder(base core.Params, leads int) (*Encoder, error) {
	if leads < 1 || leads > MaxLeads {
		return nil, fmt.Errorf("session: lead count %d out of [1, %d]", leads, MaxLeads)
	}
	e := &Encoder{}
	for l := 0; l < leads; l++ {
		enc, err := core.NewEncoder(leadParams(base, l))
		if err != nil {
			return nil, fmt.Errorf("session: lead %d: %w", l, err)
		}
		e.encs = append(e.encs, enc)
	}
	return e, nil
}

// Leads returns the lead count.
func (e *Encoder) Leads() int { return len(e.encs) }

// EncodeWindows compresses one synchronized window per lead and returns
// the interleaved frames (lead order).
func (e *Encoder) EncodeWindows(windows [][]int16) ([]*Frame, error) {
	if len(windows) != len(e.encs) {
		return nil, fmt.Errorf("session: %d windows for %d leads", len(windows), len(e.encs))
	}
	frames := make([]*Frame, len(windows))
	for l, win := range windows {
		pkt, err := e.encs[l].EncodeWindow(win)
		if err != nil {
			return nil, fmt.Errorf("session: lead %d: %w", l, err)
		}
		frames[l] = &Frame{Lead: uint8(l), Packet: pkt.Clone()}
	}
	return frames, nil
}

// Decoder reconstructs a fixed set of leads.
type Decoder[T linalg.Float] struct {
	decs []*core.Decoder[T]
}

// NewDecoder mirrors NewEncoder.
func NewDecoder[T linalg.Float](base core.Params, leads int) (*Decoder[T], error) {
	if leads < 1 || leads > MaxLeads {
		return nil, fmt.Errorf("session: lead count %d out of [1, %d]", leads, MaxLeads)
	}
	d := &Decoder[T]{}
	for l := 0; l < leads; l++ {
		dec, err := core.NewDecoder[T](leadParams(base, l))
		if err != nil {
			return nil, fmt.Errorf("session: lead %d: %w", l, err)
		}
		d.decs = append(d.decs, dec)
	}
	return d, nil
}

// Leads returns the lead count.
func (d *Decoder[T]) Leads() int { return len(d.decs) }

// DecodeFrame routes a frame to its lead's decoder.
func (d *Decoder[T]) DecodeFrame(f *Frame) (*core.DecodeResult[T], error) {
	if int(f.Lead) >= len(d.decs) {
		return nil, fmt.Errorf("session: frame lead %d outside the %d-lead session", f.Lead, len(d.decs))
	}
	return d.decs[f.Lead].DecodePacket(f.Packet)
}

// Tune exposes lead l's decoder for solver configuration.
func (d *Decoder[T]) Tune(l int) (*core.Decoder[T], error) {
	if l < 0 || l >= len(d.decs) {
		return nil, fmt.Errorf("session: lead %d out of range", l)
	}
	return d.decs[l], nil
}
