package solver

import (
	"math"
	"testing"

	"csecg/internal/linalg"
	"csecg/internal/rng"
	"csecg/internal/sensing"
	"csecg/internal/wavelet"
)

// sparseProblem builds a noiseless CS problem: a k-sparse coefficient
// vector measured through a Gaussian matrix.
func sparseProblem(m, n, k int, seed uint64) (linalg.Op[float64], []float64, []float64) {
	gen := rng.New(seed)
	mat, err := sensing.NewGaussian[float64](m, n, seed+1)
	if err != nil {
		panic(err)
	}
	x := make([]float64, n)
	supp := make([]int, k)
	gen.SampleK(supp, k, n)
	for _, idx := range supp {
		x[idx] = gen.NormFloat64()*2 + 1
	}
	op := linalg.OpFromDense(mat)
	y := make([]float64, m)
	op.Apply(y, x)
	return op, y, x
}

func relErr(got, want []float64) float64 {
	d := make([]float64, len(got))
	linalg.Sub(d, got, want)
	den := float64(linalg.Norm2(want))
	if den == 0 {
		den = 1
	}
	return float64(linalg.Norm2(d)) / den
}

func TestFISTARecoversSparseVector(t *testing.T) {
	op, y, x := sparseProblem(128, 256, 8, 1)
	res, err := FISTA(op, y, Options[float64]{MaxIter: 3000, Tol: 1e-9, Lambda: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(res.X, x); e > 0.02 {
		t.Errorf("FISTA relative error %v, want < 0.02 (iters %d)", e, res.Iterations)
	}
}

func TestFISTAVectorizedMatchesScalar(t *testing.T) {
	op, y, _ := sparseProblem(96, 192, 6, 2)
	a, err := FISTA(op, y, Options[float64]{MaxIter: 300, Tol: -1, Lambda: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FISTA(op, y, Options[float64]{MaxIter: 300, Tol: -1, Lambda: 1e-3, Vectorized: true})
	if err != nil {
		t.Fatal(err)
	}
	// The 4-wide kernels reassociate sums; results agree to fp noise.
	if e := relErr(a.X, b.X); e > 1e-8 {
		t.Errorf("vectorized/scalar divergence %v", e)
	}
}

func TestFISTAFasterThanISTA(t *testing.T) {
	// After the same iteration budget, FISTA's objective must be lower
	// (O(1/k²) vs O(1/k), Section II-B).
	op, y, _ := sparseProblem(128, 256, 10, 3)
	const iters = 60
	lam := 1e-3
	fi, err := FISTA(op, y, Options[float64]{MaxIter: iters, Tol: -1, Lambda: lam})
	if err != nil {
		t.Fatal(err)
	}
	is, err := ISTA(op, y, Options[float64]{MaxIter: iters, Tol: -1, Lambda: lam})
	if err != nil {
		t.Fatal(err)
	}
	if fi.Objective >= is.Objective {
		t.Errorf("FISTA objective %v not better than ISTA %v after %d iters", fi.Objective, is.Objective, iters)
	}
}

func TestFISTAConvergenceRate(t *testing.T) {
	// Track the objective gap trajectory: FISTA's gap at iteration 4k
	// should shrink much faster than ISTA's. Use a loose factor to stay
	// robust across problems.
	op, y, _ := sparseProblem(128, 256, 10, 4)
	lam := 1e-3
	trace := func(algo func(linalg.Op[float64], []float64, Options[float64]) (Result[float64], error)) []float64 {
		var vals []float64
		_, err := algo(op, y, Options[float64]{
			MaxIter: 200, Tol: -1, Lambda: lam,
			Monitor: func(_ int, obj float64) { vals = append(vals, obj) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return vals
	}
	fv := trace(FISTA[float64])
	iv := trace(ISTA[float64])
	fStar := fv[len(fv)-1]
	if iv[len(iv)-1] < fStar {
		fStar = iv[len(iv)-1]
	}
	fGap := fv[50] - fStar
	iGap := iv[50] - fStar
	if fGap < 0 {
		fGap = 0
	}
	if !(fGap < iGap) {
		t.Errorf("at iter 50: FISTA gap %v not below ISTA gap %v", fGap, iGap)
	}
}

func TestFISTAMonotoneObjectiveISTA(t *testing.T) {
	// ISTA is a majorization-minimization scheme: the objective is
	// non-increasing (FISTA's is not, so only ISTA is checked).
	op, y, _ := sparseProblem(64, 128, 5, 5)
	var vals []float64
	_, err := ISTA(op, y, Options[float64]{
		MaxIter: 100, Tol: -1, Lambda: 1e-3,
		Monitor: func(_ int, obj float64) { vals = append(vals, obj) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]*(1+1e-10) {
			t.Fatalf("ISTA objective increased at iter %d: %v -> %v", i, vals[i-1], vals[i])
		}
	}
}

func TestFISTAThroughWaveletOperator(t *testing.T) {
	// End-to-end operator test: recover a wavelet-sparse *signal* from
	// sparse binary measurements, the exact structure of the decoder.
	const n, m, d = 512, 256, 12
	w, err := wavelet.New[float64](4, n, 5)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := sensing.NewSparseBinary(m, n, d, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Build a signal that is exactly 20-sparse in the wavelet domain.
	gen := rng.New(33)
	alpha := make([]float64, n)
	supp := make([]int, 20)
	gen.SampleK(supp, 20, n)
	for _, idx := range supp {
		alpha[idx] = gen.NormFloat64() * 100
	}
	x := make([]float64, n)
	w.Inverse(x, alpha)
	a := linalg.Compose(sensing.Op[float64](phi), w.SynthesisOp())
	y := make([]float64, m)
	phiOp := sensing.Op[float64](phi)
	phiOp.Apply(y, x)
	res, err := FISTAContinuation(a, y, Options[float64]{MaxIter: 4000, Tol: 1e-10, Lambda: 1e-3}, 6)
	if err != nil {
		t.Fatal(err)
	}
	xhat := make([]float64, n)
	w.Inverse(xhat, res.X)
	if e := relErr(xhat, x); e > 0.02 {
		t.Errorf("wavelet-domain recovery error %v, want < 0.02 (iters %d)", e, res.Iterations)
	}
}

func TestContinuationBeatsColdStart(t *testing.T) {
	// Same iteration budget, small target λ: continuation must land at a
	// materially lower objective than a cold single-stage run.
	op, y, _ := sparseProblem(128, 256, 10, 13)
	const budget = 600
	lam := 1e-4
	cold, err := FISTA(op, y, Options[float64]{MaxIter: budget, Tol: -1, Lambda: lam})
	if err != nil {
		t.Fatal(err)
	}
	cont, err := FISTAContinuation(op, y, Options[float64]{MaxIter: budget, Tol: -1, Lambda: lam}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if cont.Iterations > budget {
		t.Errorf("continuation used %d iterations, budget %d", cont.Iterations, budget)
	}
	if cont.Objective >= cold.Objective {
		t.Errorf("continuation objective %v not below cold start %v", cont.Objective, cold.Objective)
	}
}

func TestContinuationDegenerate(t *testing.T) {
	op, y, _ := sparseProblem(64, 128, 5, 14)
	// stages=1 must match plain FISTA exactly.
	a, err := FISTAContinuation(op, y, Options[float64]{MaxIter: 50, Tol: -1, Lambda: 1e-3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FISTA(op, y, Options[float64]{MaxIter: 50, Tol: -1, Lambda: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(a.X, b.X); e > 1e-12 {
		t.Errorf("stages=1 diverged from plain FISTA by %v", e)
	}
}

func TestWarmStartCutsIterations(t *testing.T) {
	// Solve, perturb the measurements slightly (as consecutive ECG
	// windows do), re-solve warm vs cold: warm must converge in fewer
	// iterations.
	op, y, _ := sparseProblem(128, 256, 8, 15)
	first, err := FISTA(op, y, Options[float64]{MaxIter: 5000, Tol: 1e-8, Lambda: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	y2 := make([]float64, len(y))
	for i, v := range y {
		y2[i] = v * 1.01
	}
	cold, err := FISTA(op, y2, Options[float64]{MaxIter: 5000, Tol: 1e-8, Lambda: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := FISTA(op, y2, Options[float64]{MaxIter: 5000, Tol: 1e-8, Lambda: 1e-2, X0: first.X})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Converged {
		t.Fatal("warm start did not converge")
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm start took %d iterations, cold %d", warm.Iterations, cold.Iterations)
	}
}

func TestWarmStartBadLength(t *testing.T) {
	op, y, _ := sparseProblem(32, 64, 3, 16)
	if _, err := FISTA(op, y, Options[float64]{X0: make([]float64, 10)}); err == nil {
		t.Error("expected error for bad warm-start length")
	}
	if _, err := ISTA(op, y, Options[float64]{X0: make([]float64, 10)}); err == nil {
		t.Error("expected error for bad warm-start length (ISTA)")
	}
}

func TestFISTAFloat32(t *testing.T) {
	// The float32 instantiation (the iPhone decoder) must recover nearly
	// as well as float64 — the claim of Fig. 6.
	const m, n, k = 128, 256, 8
	mat64, _ := sensing.NewGaussian[float64](m, n, 21)
	mat32, _ := sensing.NewGaussian[float32](m, n, 21)
	gen := rng.New(22)
	x := make([]float64, n)
	supp := make([]int, k)
	gen.SampleK(supp, k, n)
	for _, idx := range supp {
		x[idx] = gen.NormFloat64()*2 + 1
	}
	op64 := linalg.OpFromDense(mat64)
	y64 := make([]float64, m)
	op64.Apply(y64, x)
	y32 := make([]float32, m)
	for i, v := range y64 {
		y32[i] = float32(v)
	}
	res32, err := FISTA(linalg.OpFromDense(mat32), y32, Options[float32]{MaxIter: 2000, Tol: 1e-6, Lambda: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, n)
	for i, v := range res32.X {
		got[i] = float64(v)
	}
	if e := relErr(got, x); e > 0.05 {
		t.Errorf("float32 recovery error %v, want < 0.05", e)
	}
}

func TestFISTAErrors(t *testing.T) {
	op, y, _ := sparseProblem(32, 64, 3, 6)
	if _, err := FISTA(op, y[:10], Options[float64]{}); err == nil {
		t.Error("expected error for measurement length mismatch")
	}
	bad := op
	bad.Apply = nil
	if _, err := FISTA(bad, y, Options[float64]{}); err == nil {
		t.Error("expected error for nil Apply")
	}
	if _, err := ISTA(bad, y, Options[float64]{}); err == nil {
		t.Error("expected error for nil Apply (ISTA)")
	}
}

func TestFISTADefaults(t *testing.T) {
	op, y, _ := sparseProblem(64, 128, 4, 7)
	res, err := FISTA(op, y, Options[float64]{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda <= 0 || res.Lipschitz <= 0 {
		t.Errorf("defaults not applied: lambda %v, L %v", res.Lambda, res.Lipschitz)
	}
	if res.Iterations == 0 {
		t.Error("no iterations performed")
	}
}

func TestOMPExactRecovery(t *testing.T) {
	op, y, x := sparseProblem(128, 256, 8, 8)
	res, err := OMP(op, y, 16, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(res.X, x); e > 1e-6 {
		t.Errorf("OMP relative error %v, want ~0 (noiseless, very sparse)", e)
	}
	if !res.Converged {
		t.Error("OMP did not report convergence")
	}
}

func TestOMPRespectsAtomBudget(t *testing.T) {
	op, y, _ := sparseProblem(64, 128, 20, 9)
	res, err := OMP(op, y, 5, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	nz := 0
	for _, v := range res.X {
		if v != 0 {
			nz++
		}
	}
	if nz > 5 {
		t.Errorf("OMP support size %d exceeds budget 5", nz)
	}
}

func TestOMPZeroMeasurement(t *testing.T) {
	op, _, _ := sparseProblem(32, 64, 3, 10)
	res, err := OMP(op, make([]float64, 32), 4, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.X {
		if v != 0 {
			t.Fatal("OMP on zero measurements returned nonzero solution")
		}
	}
}

func TestOMPErrors(t *testing.T) {
	op, y, _ := sparseProblem(32, 64, 3, 11)
	if _, err := OMP(op, y, 0, 1e-9); err == nil {
		t.Error("expected error for maxAtoms=0")
	}
	if _, err := OMP(op, y[:5], 4, 1e-9); err == nil {
		t.Error("expected error for bad measurement length")
	}
}

func TestCholSolveKnownSystem(t *testing.T) {
	// G = [[4,2],[2,3]], b = [10, 8] → x = [1.75, 1.5].
	g := []float64{4, 2, 2, 3}
	b := []float64{10, 8}
	x, ok := cholSolve(g, b, 2)
	if !ok {
		t.Fatal("cholSolve reported non-PD for PD matrix")
	}
	if math.Abs(x[0]-1.75) > 1e-12 || math.Abs(x[1]-1.5) > 1e-12 {
		t.Errorf("cholSolve = %v, want [1.75 1.5]", x)
	}
}

func TestCholSolveRejectsSingular(t *testing.T) {
	g := []float64{1, 1, 1, 1} // rank 1
	if _, ok := cholSolve(g, []float64{1, 1}, 2); ok {
		t.Error("cholSolve accepted singular matrix")
	}
}

func BenchmarkFISTA512x256Iters100Float32(b *testing.B) {
	const n, m, d = 512, 256, 12
	w, _ := wavelet.New[float32](4, n, 5)
	phi, _ := sensing.NewSparseBinary(m, n, d, 9)
	a := linalg.Compose(sensing.Op[float32](phi), w.SynthesisOp())
	gen := rng.New(1)
	y := make([]float32, m)
	for i := range y {
		y[i] = float32(gen.NormFloat64())
	}
	lip := 2 * linalg.PowerIterOpNorm(a, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FISTA(a, y, Options[float32]{MaxIter: 100, Tol: -1, Lambda: 0.01, Lipschitz: lip, Vectorized: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOMP128x256Atoms8(b *testing.B) {
	op, y, _ := sparseProblem(128, 256, 8, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OMP(op, y, 8, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}
