package solver

import (
	"fmt"
	"math"

	"csecg/internal/linalg"
)

// TwISTOptions extends Options with the two-step parameters.
type TwISTOptions[T linalg.Float] struct {
	Options[T]
	// Xi1 is the assumed lower bound on the eigenvalues of the
	// normalized AᵀA (the κ⁻¹ of Bioucas-Dias & Figueiredo 2007). CS
	// operators with M < N are singular, so the practical value is a
	// small positive constant; 1e-2 (the TwIST authors' recommendation
	// for severely ill-posed problems) is the default.
	Xi1 float64
}

// TwIST minimizes F(α) = ‖Aα−y‖₂² + λ‖α‖₁ with the two-step iterative
// shrinkage/thresholding algorithm (the paper's reference [15], cited as
// one of the ISTA accelerations alongside FISTA). Each iterate mixes the
// previous two iterates with the IST step:
//
//	α_{t+1} = (1−γ)·α_{t−1} + (γ−β)·α_t + β·Γ(α_t)
//
// with γ, β derived from the assumed spectral bounds. A monotone
// safeguard falls back to the plain IST step whenever the two-step
// update would increase the objective (the "monotone TwIST" variant),
// which keeps the method stable on singular CS operators.
func TwIST[T linalg.Float](a linalg.Op[T], y []T, opt TwISTOptions[T]) (Result[T], error) {
	st, err := newState(a, y, &opt.Options)
	if err != nil {
		return Result[T]{}, err
	}
	if opt.Xi1 <= 0 || opt.Xi1 > 1 {
		opt.Xi1 = 1e-2
	}
	// Two-step parameters: ρ = (1−ξ₁)/(1+ξ₁) on the normalized
	// spectrum, γ (the authors' α) = 2/(1+√(1−ρ²)), β = 2γ/(ξ₁+1).
	rho := (1 - opt.Xi1) / (1 + opt.Xi1)
	gamma := T(2 / (1 + math.Sqrt(1-rho*rho)))
	beta := gamma * T(2/(opt.Xi1+1))

	n := a.InDim
	prev := make([]T, n)   // α_{t−1}
	cur := make([]T, n)    // α_t
	next := make([]T, n)   // α_{t+1}
	grad := make([]T, n)   // ∇f buffer
	gammaT := make([]T, n) // Γ(α_t)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return Result[T]{}, fmt.Errorf("solver: warm start length %d, want %d", len(opt.X0), n)
		}
		copy(prev, opt.X0)
		copy(cur, opt.X0)
	}
	dl := newDeadline(&opt.Options)
	res := Result[T]{Lambda: opt.Lambda, Lipschitz: opt.Lipschitz}
	objCur := st.objective(cur, opt.Lambda)
	for k := 1; k <= opt.MaxIter; k++ {
		// IST step Γ(α_t) with the 1/L normalized gradient.
		st.gradient(grad, cur)
		copy(gammaT, cur)
		step := 1 / opt.Lipschitz
		if st.vec {
			linalg.Axpy4(-step, grad, gammaT)
			linalg.SoftThreshold4(gammaT, gammaT, opt.Lambda/opt.Lipschitz)
		} else {
			linalg.Axpy(-step, grad, gammaT)
			linalg.SoftThreshold(gammaT, gammaT, opt.Lambda/opt.Lipschitz)
		}
		// Two-step combination.
		for i := range next {
			next[i] = (1-gamma)*prev[i] + (gamma-beta)*cur[i] + beta*gammaT[i]
		}
		objNext := st.objective(next, opt.Lambda)
		if objNext > objCur {
			// Monotone safeguard: take the plain IST step instead.
			copy(next, gammaT)
			objNext = st.objective(next, opt.Lambda)
		}
		res.Iterations = k
		if opt.Monitor != nil {
			opt.Monitor(k, objNext)
		}
		if st.converged(next, cur, opt.Tol) {
			prev, cur = cur, next
			objCur = objNext
			res.Converged = true
			break
		}
		if dl.expired(k) {
			prev, cur = cur, next
			objCur = objNext
			res.DeadlineExpired = true
			break
		}
		prev, cur, next = cur, next, prev
		objCur = objNext
	}
	res.X = cur
	res.Objective = objCur
	return res, nil
}
