// Package solver implements the sparse-recovery algorithms of the
// decoder: ISTA, FISTA (the paper's choice, Beck & Teboulle 2009) and a
// greedy OMP baseline.
//
// All solvers work on the Lagrangian form of Eq. (3),
//
//	min_α F(α) = ‖Aα − y‖₂² + λ‖α‖₁,  A = ΦΨ,
//
// and access A only through a linalg.Op — matrix-vector products built
// from the sparse sensing matrix and the wavelet filter bank — so no
// dense M×N matrix is ever formed (the paper's contribution (1)).
//
// The solvers are generic over float32/float64. The float32 instance is
// the paper's "iPhone (32-bit)" decoder and the float64 instance the
// "Matlab (64-bit)" reference of Fig. 6. A Vectorized option switches
// the inner kernels between the scalar ("VFP") and 4-wide unrolled
// ("NEON") variants, which the coordinator cycle model prices
// differently.
package solver

import (
	"fmt"
	"math"

	"csecg/internal/linalg"
)

// Options controls an ISTA/FISTA run.
type Options[T linalg.Float] struct {
	// MaxIter bounds the iteration count. The coordinator uses this to
	// enforce its real-time budget (800 unoptimized / 2000 optimized per
	// the paper). Defaults to 1000 if zero.
	MaxIter int
	// Tol stops the run when the relative iterate change
	// ‖α_k − α_{k−1}‖₂ / max(1, ‖α_k‖₂) falls below it. Defaults to 1e-4
	// if zero; set negative to disable early stopping.
	Tol float64
	// Lambda is the l1 weight λ. If zero, it defaults to
	// 0.001·‖Aᵀy‖∞ — small enough that the solution bias stays below
	// the CS undersampling error on ECG-like problems, while still
	// scaling with the signal.
	Lambda T
	// Lipschitz is the constant L = 2·λmax(AᵀA). If zero, it is
	// estimated by power iteration (30 rounds) before the run.
	Lipschitz T
	// Vectorized selects the 4-wide unrolled kernels (the NEON path).
	// The scalar path is the VFP reference.
	Vectorized bool
	// X0, when non-nil, warm-starts the iteration. The packet decoder
	// passes the previous window's solution: consecutive ECG windows are
	// quasi-periodic, so the warm start cuts the iteration count
	// substantially (this, plus continuation, is how the per-packet
	// iteration counts of Fig. 7 stay in the hundreds).
	X0 []T
	// Monitor, when non-nil, is invoked each iteration with the current
	// objective value F(α_k). Computing F costs one extra A·α per
	// iteration, so leave nil in production.
	Monitor func(iter int, objective T)
	// Trace, when non-nil, receives the full per-iteration telemetry
	// sample: objective, residual norm and step norm. Like Monitor it
	// costs one extra operator apply per iteration (for the objective),
	// so enable it only in instrumented runs.
	Trace func(iter int, s IterSample)
	// DeadlineNs, when nonzero, is an absolute soft deadline in the
	// nanoseconds of the Now clock: once Now() reaches it the solver
	// stops at the current iterate and flags the result
	// DeadlineExpired. The iterate is the best-so-far answer — a
	// degraded reconstruction, never an error — so real-time callers
	// always get samples to display.
	DeadlineNs int64
	// Now supplies the clock for deadline checks. It must be injected
	// (telemetry.Clock.Now fits): library code stays deterministic, so
	// there is no time.Now fallback — a nonzero DeadlineNs with a nil
	// Now disables the deadline.
	Now func() int64
	// DeadlineEvery is the iteration stride between deadline checks.
	// Defaults to DefaultDeadlineEvery if zero.
	DeadlineEvery int
}

// IterSample is one iteration's solver telemetry, as recorded by the
// Options.Trace hook and surfaced in window traces.
type IterSample struct {
	// Objective is F(α_k) = ‖Aα_k − y‖₂² + λ‖α_k‖₁.
	Objective float64
	// Residual is ‖Ay_k − y‖₂ evaluated at the gradient point of the
	// iteration (the momentum point for FISTA, α_{k−1} for ISTA).
	Residual float64
	// Step is ‖α_k − α_{k−1}‖₂, the quantity the stopping rule tests.
	Step float64
}

// Result reports a solver run.
type Result[T linalg.Float] struct {
	// X is the recovered coefficient vector α.
	X []T
	// Iterations actually performed.
	Iterations int
	// Converged is true when the tolerance (not the iteration cap)
	// stopped the run.
	Converged bool
	// DeadlineExpired is true when the soft deadline (Options.DeadlineNs)
	// stopped the run; X then holds the best-so-far iterate.
	DeadlineExpired bool
	// Objective is the final F(α).
	Objective T
	// Lambda and Lipschitz echo the values used (after defaulting).
	Lambda, Lipschitz T
	// StageIters holds the per-stage iteration counts of a continuation
	// run (FISTAContinuation); nil for single-stage solves. The causal
	// span trace splits the solver leaf into sub-stage spans
	// proportionally to these counts.
	StageIters []int
}

// FISTA minimizes F(α) = ‖Aα−y‖₂² + λ‖α‖₁ with the fast iterative
// shrinkage-thresholding algorithm (constant step size, Eqs. (4)-(6) of
// the paper). It returns an error only for structural problems (shape
// mismatch, nil operator).
func FISTA[T linalg.Float](a linalg.Op[T], y []T, opt Options[T]) (Result[T], error) {
	st, err := newState(a, y, &opt)
	if err != nil {
		return Result[T]{}, err
	}
	n := a.InDim
	alpha := make([]T, n)     // α_k
	alphaPrev := make([]T, n) // α_{k−1}
	yk := make([]T, n)        // momentum point y_k
	grad := make([]T, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return Result[T]{}, fmt.Errorf("solver: warm start length %d, want %d", len(opt.X0), n)
		}
		copy(alphaPrev, opt.X0)
		copy(yk, opt.X0)
	}
	tk := T(1)
	dl := newDeadline(&opt)
	res := Result[T]{Lambda: opt.Lambda, Lipschitz: opt.Lipschitz}
	for k := 1; k <= opt.MaxIter; k++ {
		// α_k = prox_{λ/L}(y_k − (1/L)∇f(y_k)), Eq. (4).
		st.gradient(grad, yk)
		var residual T
		if opt.Trace != nil {
			// st.r still holds Ay_k − y from the gradient evaluation;
			// read it before the objective computation reuses the buffer.
			residual = linalg.Norm2(st.r)
		}
		step := 1 / opt.Lipschitz
		if st.vec {
			linalg.Axpy4(-step, grad, yk)
			linalg.SoftThreshold4(alpha, yk, opt.Lambda/opt.Lipschitz)
		} else {
			linalg.Axpy(-step, grad, yk)
			linalg.SoftThreshold(alpha, yk, opt.Lambda/opt.Lipschitz)
		}
		// t_{k+1}, Eq. (5).
		tNext := (1 + T(math.Sqrt(float64(1+4*tk*tk)))) / 2
		// y_{k+1} = α_k + ((t_k−1)/t_{k+1})(α_k − α_{k−1}), Eq. (6).
		beta := (tk - 1) / tNext
		if st.vec {
			linalg.Combine4(yk, alpha, alphaPrev, beta)
		} else {
			for i := range yk {
				yk[i] = alpha[i] + beta*(alpha[i]-alphaPrev[i])
			}
		}
		tk = tNext
		res.Iterations = k
		if opt.Monitor != nil {
			opt.Monitor(k, st.objective(alpha, opt.Lambda))
		}
		if opt.Trace != nil {
			opt.Trace(k, IterSample{
				Objective: float64(st.objective(alpha, opt.Lambda)),
				Residual:  float64(residual),
				Step:      float64(stepNorm(alpha, alphaPrev)),
			})
		}
		if st.converged(alpha, alphaPrev, opt.Tol) {
			res.Converged = true
			copy(alphaPrev, alpha)
			break
		}
		if dl.expired(k) {
			res.DeadlineExpired = true
			copy(alphaPrev, alpha)
			break
		}
		// Swap roles: α_k becomes α_{k−1}; the old buffer is fully
		// overwritten by the next prox step.
		alpha, alphaPrev = alphaPrev, alpha
	}
	// alphaPrev holds the last iterate after the final swap (or the
	// explicit copy on convergence).
	res.X = alphaPrev
	res.Objective = st.objective(res.X, opt.Lambda)
	return res, nil
}

// ISTA is the unaccelerated baseline (O(1/k) vs FISTA's O(1/k²)); the
// paper cites it as "notoriously slow", which the convergence experiment
// reproduces.
func ISTA[T linalg.Float](a linalg.Op[T], y []T, opt Options[T]) (Result[T], error) {
	st, err := newState(a, y, &opt)
	if err != nil {
		return Result[T]{}, err
	}
	n := a.InDim
	alpha := make([]T, n)
	prev := make([]T, n)
	grad := make([]T, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return Result[T]{}, fmt.Errorf("solver: warm start length %d, want %d", len(opt.X0), n)
		}
		copy(alpha, opt.X0)
	}
	dl := newDeadline(&opt)
	res := Result[T]{Lambda: opt.Lambda, Lipschitz: opt.Lipschitz}
	for k := 1; k <= opt.MaxIter; k++ {
		copy(prev, alpha)
		st.gradient(grad, alpha)
		var residual T
		if opt.Trace != nil {
			residual = linalg.Norm2(st.r)
		}
		step := 1 / opt.Lipschitz
		if st.vec {
			linalg.Axpy4(-step, grad, alpha)
			linalg.SoftThreshold4(alpha, alpha, opt.Lambda/opt.Lipschitz)
		} else {
			linalg.Axpy(-step, grad, alpha)
			linalg.SoftThreshold(alpha, alpha, opt.Lambda/opt.Lipschitz)
		}
		res.Iterations = k
		if opt.Monitor != nil {
			opt.Monitor(k, st.objective(alpha, opt.Lambda))
		}
		if opt.Trace != nil {
			opt.Trace(k, IterSample{
				Objective: float64(st.objective(alpha, opt.Lambda)),
				Residual:  float64(residual),
				Step:      float64(stepNorm(alpha, prev)),
			})
		}
		if st.converged(alpha, prev, opt.Tol) {
			res.Converged = true
			break
		}
		if dl.expired(k) {
			res.DeadlineExpired = true
			break
		}
	}
	res.X = alpha
	res.Objective = st.objective(alpha, opt.Lambda)
	return res, nil
}

// state carries the shared scratch buffers and kernels of a run.
type state[T linalg.Float] struct {
	a   linalg.Op[T]
	y   []T
	r   []T // residual buffer, length M
	vec bool
}

func newState[T linalg.Float](a linalg.Op[T], y []T, opt *Options[T]) (*state[T], error) {
	if a.Apply == nil || a.ApplyT == nil {
		return nil, fmt.Errorf("solver: operator missing Apply/ApplyT")
	}
	if len(y) != a.OutDim {
		return nil, fmt.Errorf("solver: measurement length %d, operator range %d", len(y), a.OutDim)
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 1000
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-4
	}
	st := &state[T]{a: a, y: y, r: make([]T, a.OutDim), vec: opt.Vectorized}
	if opt.Lipschitz <= 0 {
		opt.Lipschitz = 2 * linalg.PowerIterOpNorm(a, 30)
		if opt.Lipschitz <= 0 {
			return nil, fmt.Errorf("solver: operator norm estimated as zero")
		}
	}
	if opt.Lambda <= 0 {
		aty := make([]T, a.InDim)
		a.ApplyT(aty, y)
		opt.Lambda = linalg.NormInf(aty) / 1000
		if opt.Lambda == 0 {
			opt.Lambda = 1e-6
		}
	}
	return st, nil
}

// gradient computes ∇f(x) = 2·Aᵀ(Ax − y) into dst.
func (st *state[T]) gradient(dst, x []T) {
	st.a.Apply(st.r, x)
	if st.vec {
		linalg.Sub4(st.r, st.r, st.y)
	} else {
		linalg.Sub(st.r, st.r, st.y)
	}
	st.a.ApplyT(dst, st.r)
	if st.vec {
		linalg.Axpy4(1, dst, dst) // ×2 via dst += dst
	} else {
		linalg.Scale(2, dst)
	}
}

func (st *state[T]) objective(x []T, lambda T) T {
	st.a.Apply(st.r, x)
	linalg.Sub(st.r, st.r, st.y)
	n2 := linalg.Norm2(st.r)
	return n2*n2 + lambda*linalg.Norm1(x)
}

// stepNorm computes ‖cur − prev‖₂ without scratch allocation (it runs
// once per traced iteration).
func stepNorm[T linalg.Float](cur, prev []T) T {
	var s float64
	for i := range cur {
		d := float64(cur[i] - prev[i])
		s += d * d
	}
	return T(math.Sqrt(s))
}

func (st *state[T]) converged(cur, prev []T, tol float64) bool {
	if tol < 0 {
		return false
	}
	diff := make([]T, len(cur))
	if st.vec {
		linalg.Sub4(diff, cur, prev)
	} else {
		linalg.Sub(diff, cur, prev)
	}
	den := float64(linalg.Norm2(cur))
	if den < 1 {
		den = 1
	}
	return float64(linalg.Norm2(diff))/den < tol
}
