package solver

import (
	"math"
	"testing"
)

func finiteSamples(t *testing.T, samples []IterSample) {
	t.Helper()
	for i, s := range samples {
		if math.IsNaN(s.Objective) || math.IsInf(s.Objective, 0) {
			t.Fatalf("iteration %d: objective %v not finite", i, s.Objective)
		}
		if s.Residual < 0 || math.IsNaN(s.Residual) || math.IsInf(s.Residual, 0) {
			t.Fatalf("iteration %d: residual %v invalid", i, s.Residual)
		}
		if s.Step < 0 || math.IsNaN(s.Step) {
			t.Fatalf("iteration %d: step %v invalid", i, s.Step)
		}
	}
}

func TestFISTATraceObservesEveryIteration(t *testing.T) {
	op, y, _ := sparseProblem(128, 256, 8, 3)
	opts := Options[float64]{MaxIter: 400, Tol: 1e-9, Lambda: 1e-4}

	base, err := FISTA(op, y, opts)
	if err != nil {
		t.Fatal(err)
	}

	var samples []IterSample
	opts.Trace = func(iter int, s IterSample) {
		if iter != len(samples)+1 {
			t.Fatalf("trace iteration %d out of order (have %d samples)", iter, len(samples))
		}
		samples = append(samples, s)
	}
	traced, err := FISTA(op, y, opts)
	if err != nil {
		t.Fatal(err)
	}

	if len(samples) != traced.Iterations {
		t.Errorf("trace fired %d times, solver ran %d iterations", len(samples), traced.Iterations)
	}
	finiteSamples(t, samples)
	// The residual must end far below where it starts on a recoverable
	// problem.
	first, last := samples[0].Residual, samples[len(samples)-1].Residual
	if last > first/10 {
		t.Errorf("residual barely moved: %v → %v", first, last)
	}
	// Tracing is observation only — the iterate sequence must be
	// bit-identical with and without it.
	if traced.Iterations != base.Iterations {
		t.Errorf("trace changed iteration count: %d vs %d", traced.Iterations, base.Iterations)
	}
	for i := range base.X {
		if traced.X[i] != base.X[i] {
			t.Fatalf("trace perturbed the solution at coefficient %d: %v vs %v",
				i, traced.X[i], base.X[i])
		}
	}
}

func TestISTATraceObservesEveryIteration(t *testing.T) {
	op, y, _ := sparseProblem(96, 192, 6, 4)
	var samples []IterSample
	res, err := ISTA(op, y, Options[float64]{
		MaxIter: 200, Tol: 1e-9, Lambda: 1e-3,
		Trace: func(iter int, s IterSample) { samples = append(samples, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != res.Iterations {
		t.Errorf("trace fired %d times, solver ran %d iterations", len(samples), res.Iterations)
	}
	finiteSamples(t, samples)
}
