package solver

import (
	"testing"
)

func TestGPSRRecoversSparseVector(t *testing.T) {
	op, y, x := sparseProblem(128, 256, 8, 51)
	res, err := GPSR(op, y, Options[float64]{MaxIter: 3000, Tol: 1e-8, Lambda: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(res.X, x); e > 0.03 {
		t.Errorf("GPSR relative error %v, want < 0.03 (iters %d)", e, res.Iterations)
	}
	if !res.Converged {
		t.Error("GPSR did not converge")
	}
}

func TestGPSRMonotone(t *testing.T) {
	op, y, _ := sparseProblem(96, 192, 8, 52)
	var vals []float64
	_, err := GPSR(op, y, Options[float64]{
		MaxIter: 200, Tol: -1, Lambda: 1e-3,
		Monitor: func(_ int, obj float64) { vals = append(vals, obj) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) < 10 {
		t.Fatalf("only %d monitored iterations", len(vals))
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]*(1+1e-9) {
			t.Fatalf("objective increased at iter %d: %v -> %v", i, vals[i-1], vals[i])
		}
	}
}

func TestGPSRMatchesFISTASolution(t *testing.T) {
	// Both minimize the same objective: at tight tolerances the
	// objective values must agree closely.
	op, y, _ := sparseProblem(64, 128, 5, 53)
	lam := 1e-2
	gp, err := GPSR(op, y, Options[float64]{MaxIter: 5000, Tol: 1e-10, Lambda: lam})
	if err != nil {
		t.Fatal(err)
	}
	fi, err := FISTA(op, y, Options[float64]{MaxIter: 5000, Tol: 1e-10, Lambda: lam})
	if err != nil {
		t.Fatal(err)
	}
	if gp.Objective > fi.Objective*1.01+1e-9 {
		t.Errorf("GPSR objective %v vs FISTA %v", gp.Objective, fi.Objective)
	}
}

func TestGPSRWarmStart(t *testing.T) {
	op, y, _ := sparseProblem(64, 128, 5, 54)
	first, err := GPSR(op, y, Options[float64]{MaxIter: 4000, Tol: 1e-9, Lambda: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := GPSR(op, y, Options[float64]{MaxIter: 4000, Tol: 1e-9, Lambda: 1e-2, X0: first.X})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > first.Iterations {
		t.Errorf("warm start took %d iterations, cold %d", warm.Iterations, first.Iterations)
	}
	if _, err := GPSR(op, y, Options[float64]{X0: make([]float64, 2)}); err == nil {
		t.Error("bad warm-start length accepted")
	}
}

func TestGPSRErrors(t *testing.T) {
	op, y, _ := sparseProblem(32, 64, 3, 55)
	bad := op
	bad.Apply = nil
	if _, err := GPSR(bad, y, Options[float64]{}); err == nil {
		t.Error("nil Apply accepted")
	}
	if _, err := GPSR(op, y[:3], Options[float64]{}); err == nil {
		t.Error("bad measurement length accepted")
	}
}

func BenchmarkGPSR128x256Iters100(b *testing.B) {
	op, y, _ := sparseProblem(128, 256, 8, 56)
	for i := 0; i < b.N; i++ {
		if _, err := GPSR(op, y, Options[float64]{MaxIter: 100, Tol: -1, Lambda: 1e-3}); err != nil {
			b.Fatal(err)
		}
	}
}
