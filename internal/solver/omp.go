package solver

import (
	"fmt"
	"math"

	"csecg/internal/linalg"
)

// OMP recovers a k-sparse coefficient vector by orthogonal matching
// pursuit (Tropp 2004), the greedy baseline the paper cites alongside
// the convex solvers. Each round it adds the column most correlated
// with the residual and re-solves the least-squares problem on the
// accumulated support via normal equations (the supports stay small, so
// a dense Cholesky is appropriate).
//
// maxAtoms bounds the support size; resTol stops early once the residual
// norm drops below resTol·‖y‖₂.
func OMP[T linalg.Float](a linalg.Op[T], y []T, maxAtoms int, resTol float64) (Result[T], error) {
	if a.Apply == nil || a.ApplyT == nil {
		return Result[T]{}, fmt.Errorf("solver: operator missing Apply/ApplyT")
	}
	if len(y) != a.OutDim {
		return Result[T]{}, fmt.Errorf("solver: measurement length %d, operator range %d", len(y), a.OutDim)
	}
	if maxAtoms <= 0 || maxAtoms > a.InDim {
		return Result[T]{}, fmt.Errorf("solver: maxAtoms %d out of [1, %d]", maxAtoms, a.InDim)
	}
	if resTol <= 0 {
		resTol = 1e-6
	}
	m, n := a.OutDim, a.InDim
	yNorm := float64(linalg.Norm2(y))
	if yNorm == 0 {
		return Result[T]{X: make([]T, n), Converged: true}, nil
	}
	residual := make([]T, m)
	copy(residual, y)
	corr := make([]T, n)
	support := make([]int, 0, maxAtoms)
	inSupport := make([]bool, n)
	cols := make([][]T, 0, maxAtoms) // extracted columns of A
	basis := make([]T, n)
	coef := make([]T, 0, maxAtoms)
	res := Result[T]{}
	for len(support) < maxAtoms {
		// Select the atom most correlated with the residual.
		a.ApplyT(corr, residual)
		best, bestVal := -1, T(0)
		for j, v := range corr {
			if inSupport[j] {
				continue
			}
			if v < 0 {
				v = -v
			}
			if v > bestVal {
				bestVal, best = v, j
			}
		}
		if best < 0 || bestVal == 0 {
			break // residual orthogonal to all remaining atoms
		}
		inSupport[best] = true
		support = append(support, best)
		// Extract column A·e_best.
		for i := range basis {
			basis[i] = 0
		}
		basis[best] = 1
		col := make([]T, m)
		a.Apply(col, basis)
		cols = append(cols, col)
		// Solve min ‖A_S c − y‖₂ by normal equations G c = b.
		k := len(cols)
		g := make([]float64, k*k)
		b := make([]float64, k)
		for i := 0; i < k; i++ {
			for j := i; j < k; j++ {
				v := float64(linalg.Dot(cols[i], cols[j]))
				g[i*k+j] = v
				g[j*k+i] = v
			}
			b[i] = float64(linalg.Dot(cols[i], y))
		}
		c, ok := cholSolve(g, b, k)
		if !ok {
			// Gram matrix numerically singular: drop the atom and stop.
			support = support[:k-1]
			cols = cols[:k-1]
			break
		}
		coef = coef[:0]
		for _, v := range c {
			coef = append(coef, T(v))
		}
		// residual = y − A_S c.
		copy(residual, y)
		for i, colv := range cols {
			linalg.Axpy(-coef[i], colv, residual)
		}
		res.Iterations++
		if float64(linalg.Norm2(residual)) < resTol*yNorm {
			res.Converged = true
			break
		}
	}
	x := make([]T, n)
	for i, j := range support {
		if i < len(coef) {
			x[j] = coef[i]
		}
	}
	res.X = x
	rn := linalg.Norm2(residual)
	res.Objective = rn * rn
	return res, nil
}

// cholSolve solves the symmetric positive-definite system G·x = b with an
// in-place Cholesky factorization. It reports ok=false if G is not
// numerically positive definite.
func cholSolve(g, b []float64, k int) ([]float64, bool) {
	// Factor G = L·Lᵀ (lower triangle stored in g).
	for j := 0; j < k; j++ {
		d := g[j*k+j]
		for p := 0; p < j; p++ {
			d -= g[j*k+p] * g[j*k+p]
		}
		if d <= 1e-12 {
			return nil, false
		}
		d = math.Sqrt(d)
		g[j*k+j] = d
		for i := j + 1; i < k; i++ {
			s := g[i*k+j]
			for p := 0; p < j; p++ {
				s -= g[i*k+p] * g[j*k+p]
			}
			g[i*k+j] = s / d
		}
	}
	// Forward substitution L·z = b.
	z := make([]float64, k)
	for i := 0; i < k; i++ {
		s := b[i]
		for p := 0; p < i; p++ {
			s -= g[i*k+p] * z[p]
		}
		z[i] = s / g[i*k+i]
	}
	// Back substitution Lᵀ·x = z.
	x := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		s := z[i]
		for p := i + 1; p < k; p++ {
			s -= g[p*k+i] * x[p]
		}
		x[i] = s / g[i*k+i]
	}
	return x, true
}
