package solver

import (
	"testing"

	"csecg/internal/linalg"
)

// pollClock is a deterministic fake wall clock that advances one tick
// per read — the deadline fires after a fixed number of polls without
// any real time passing.
func pollClock(tickNs int64) func() int64 {
	var now int64
	return func() int64 {
		now += tickNs
		return now
	}
}

// TestSolverDeadlineStopsEarly verifies every iterative solver honors
// the soft deadline: it stops well short of MaxIter, flags the result,
// and still returns a full-length best-so-far iterate.
func TestSolverDeadlineStopsEarly(t *testing.T) {
	op, y, _ := sparseProblem(128, 256, 8, 11)
	base := Options[float64]{MaxIter: 3000, Tol: -1, Lambda: 1e-4}
	runs := []struct {
		name string
		run  func(Options[float64]) (Result[float64], error)
	}{
		{"FISTA", func(o Options[float64]) (Result[float64], error) { return FISTA(op, y, o) }},
		{"ISTA", func(o Options[float64]) (Result[float64], error) { return ISTA(op, y, o) }},
		{"GPSR", func(o Options[float64]) (Result[float64], error) { return GPSR(op, y, o) }},
		{"TwIST", func(o Options[float64]) (Result[float64], error) {
			return TwIST(op, y, TwISTOptions[float64]{Options: o})
		}},
	}
	for _, tc := range runs {
		t.Run(tc.name, func(t *testing.T) {
			opt := base
			opt.Now = pollClock(1_000_000) // 1 ms per poll
			opt.DeadlineNs = 5_000_000     // expires at the 5th poll
			res, err := tc.run(opt)
			if err != nil {
				t.Fatal(err)
			}
			if !res.DeadlineExpired {
				t.Fatalf("DeadlineExpired = false after %d iterations", res.Iterations)
			}
			if res.Converged {
				t.Fatal("deadline stop must not claim convergence")
			}
			// 5 polls at the default 32-iteration stride.
			if want := 5 * DefaultDeadlineEvery; res.Iterations != want {
				t.Errorf("stopped after %d iterations, want %d", res.Iterations, want)
			}
			if len(res.X) != 256 {
				t.Errorf("best-so-far iterate length %d, want 256", len(res.X))
			}
		})
	}
}

// TestSolverDeadlineInertWithoutClock pins the determinism contract: a
// nonzero DeadlineNs with no injected clock must be ignored rather than
// falling back to a wall clock.
func TestSolverDeadlineInertWithoutClock(t *testing.T) {
	op, y, _ := sparseProblem(96, 192, 6, 12)
	res, err := FISTA(op, y, Options[float64]{MaxIter: 50, Tol: -1, Lambda: 1e-3, DeadlineNs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineExpired {
		t.Fatal("deadline fired without a clock")
	}
	if res.Iterations != 50 {
		t.Fatalf("ran %d iterations, want the full 50", res.Iterations)
	}
}

// TestContinuationStopsAtDeadline verifies the stage loop gives up the
// λ path once a stage reports an expired budget instead of burning the
// remaining stages on a dead clock.
func TestContinuationStopsAtDeadline(t *testing.T) {
	op, y, _ := sparseProblem(128, 256, 8, 13)
	opt := Options[float64]{MaxIter: 1200, Tol: -1, Lambda: 1e-5}
	opt.Now = pollClock(1_000_000)
	opt.DeadlineNs = 2_000_000 // expires inside the first stage
	res, err := FISTAContinuation(op, y, opt, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadlineExpired {
		t.Fatal("continuation lost the DeadlineExpired flag")
	}
	// First stage: 1200/6 = 200 per stage, stopped at the 2nd poll.
	if want := 2 * DefaultDeadlineEvery; res.Iterations != want {
		t.Errorf("total iterations %d, want %d (first stage only)", res.Iterations, want)
	}
}

// TestContinuationClampsPerStage is the regression test for the
// per-stage budget: MaxIter < stages used to floor-divide to zero
// iterations per stage, silently returning the warm-start (zero)
// vector. Each stage must run at least one iteration.
func TestContinuationClampsPerStage(t *testing.T) {
	op, y, _ := sparseProblem(128, 256, 8, 14)
	const stages = 6
	res, err := FISTAContinuation(op, y, Options[float64]{MaxIter: stages - 2, Tol: -1, Lambda: 1e-4}, stages)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < stages {
		t.Fatalf("%d total iterations across %d stages, want ≥ 1 per stage", res.Iterations, stages)
	}
	if linalg.Norm2(res.X) == 0 {
		t.Fatal("solution is identically zero: stages ran no iterations")
	}
}

// TestSolveDispatch covers the Algorithm-name front door the
// degradation ladder uses.
func TestSolveDispatch(t *testing.T) {
	op, y, _ := sparseProblem(96, 192, 6, 15)
	opt := Options[float64]{MaxIter: 80, Tol: -1, Lambda: 1e-3}
	for _, algo := range []Algorithm{AlgoFISTA, AlgoISTA, AlgoGPSR} {
		res, err := Solve(algo, op, y, opt, 1)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(res.X) != 192 || res.Iterations == 0 {
			t.Errorf("%v: degenerate result (len %d, iters %d)", algo, len(res.X), res.Iterations)
		}
	}
	if _, err := Solve(Algorithm(99), op, y, opt, 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if AlgoFISTA.String() != "fista" || AlgoGPSR.String() != "gpsr" {
		t.Fatal("algorithm names drifted: telemetry labels depend on them")
	}
}
