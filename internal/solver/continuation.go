package solver

import (
	"math"

	"csecg/internal/linalg"
)

// FISTAContinuation solves the λ-target problem through a geometric
// sequence of decreasing λ values, warm-starting each stage with the
// previous solution. Small-λ LASSO problems converge slowly when started
// cold (the regularization path must be traversed anyway); continuation
// walks the path explicitly and typically cuts total iterations by an
// order of magnitude. stages ≤ 1 degenerates to a single FISTA run.
//
// The returned Result aggregates the iterations of all stages and carries
// the final stage's solution and objective.
func FISTAContinuation[T linalg.Float](a linalg.Op[T], y []T, opt Options[T], stages int) (Result[T], error) {
	if stages <= 1 {
		return FISTA(a, y, opt)
	}
	// Resolve defaults once so every stage shares L and the λ target.
	if _, err := newState(a, y, &opt); err != nil {
		return Result[T]{}, err
	}
	// λ₀ = ‖Aᵀy‖∞ / 2: above that the solution is identically zero, so
	// starting higher wastes stages.
	aty := make([]T, a.InDim)
	a.ApplyT(aty, y)
	lam0 := linalg.NormInf(aty) / 2
	target := opt.Lambda
	if lam0 <= target {
		return FISTA(a, y, opt)
	}
	// Geometric schedule λ₀ → target over the stage count.
	ratio := float64(target / lam0)
	factor := T(math.Pow(ratio, 1/float64(stages-1)))
	perStage := opt.MaxIter / stages
	if perStage < 1 {
		perStage = 1
	}
	lam := lam0
	var x0 []T
	total := 0
	stageIters := make([]int, 0, stages)
	var last Result[T]
	for s := 0; s < stages; s++ {
		if s == stages-1 {
			lam = target
		}
		stageOpt := opt
		stageOpt.Lambda = lam
		stageOpt.MaxIter = perStage
		stageOpt.X0 = x0
		var err error
		last, err = FISTA(a, y, stageOpt)
		if err != nil {
			return Result[T]{}, err
		}
		total += last.Iterations
		stageIters = append(stageIters, last.Iterations)
		x0 = last.X
		if last.DeadlineExpired {
			// Budget exhausted mid-path: the stage iterate is the best
			// answer available; later stages would start and immediately
			// expire anyway.
			break
		}
		lam *= factor
	}
	last.Iterations = total
	last.StageIters = stageIters
	return last, nil
}
