package solver

import (
	"fmt"

	"csecg/internal/linalg"
)

// Algorithm names a sparse-recovery method for callers that select the
// solver at run time — the coordinator's degradation ladder switches
// FISTA→GPSR under deadline pressure without plumbing function values
// through its configuration.
type Algorithm uint8

const (
	// AlgoFISTA is the paper's solver (with continuation when the
	// caller requests stages > 1).
	AlgoFISTA Algorithm = iota
	// AlgoISTA is the unaccelerated baseline.
	AlgoISTA
	// AlgoGPSR is gradient projection for sparse reconstruction — the
	// ladder's fallback: its BB-stepped projected-gradient iterations
	// reach a clinically usable iterate in fewer iterations than FISTA
	// at moderate λ, trading final accuracy for early progress.
	AlgoGPSR
)

// String returns the lower-case solver name used in telemetry labels.
func (a Algorithm) String() string {
	switch a {
	case AlgoFISTA:
		return "fista"
	case AlgoISTA:
		return "ista"
	case AlgoGPSR:
		return "gpsr"
	}
	return fmt.Sprintf("algorithm(%d)", uint8(a))
}

// Solve runs the named algorithm. stages applies continuation to
// AlgoFISTA only (stages ≤ 1, or any other algorithm, runs a single
// stage); GPSR's projected-gradient steps do not need the λ path at the
// ladder's operating points.
func Solve[T linalg.Float](algo Algorithm, a linalg.Op[T], y []T, opt Options[T], stages int) (Result[T], error) {
	switch algo {
	case AlgoFISTA:
		return FISTAContinuation(a, y, opt, stages)
	case AlgoISTA:
		return ISTA(a, y, opt)
	case AlgoGPSR:
		return GPSR(a, y, opt)
	}
	return Result[T]{}, fmt.Errorf("solver: unknown algorithm %d", uint8(algo))
}
