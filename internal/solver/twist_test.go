package solver

import (
	"testing"

	"csecg/internal/linalg"
)

func TestTwISTRecoversSparseVector(t *testing.T) {
	op, y, x := sparseProblem(128, 256, 8, 41)
	res, err := TwIST(op, y, TwISTOptions[float64]{
		Options: Options[float64]{MaxIter: 3000, Tol: 1e-9, Lambda: 1e-4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(res.X, x); e > 0.03 {
		t.Errorf("TwIST relative error %v, want < 0.03 (iters %d)", e, res.Iterations)
	}
}

func TestTwISTMonotone(t *testing.T) {
	// The monotone safeguard must make the objective non-increasing.
	op, y, _ := sparseProblem(96, 192, 8, 42)
	var vals []float64
	_, err := TwIST(op, y, TwISTOptions[float64]{
		Options: Options[float64]{
			MaxIter: 300, Tol: -1, Lambda: 1e-3,
			Monitor: func(_ int, obj float64) { vals = append(vals, obj) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]*(1+1e-10) {
			t.Fatalf("objective increased at iter %d: %v -> %v", i, vals[i-1], vals[i])
		}
	}
}

func TestTwISTFasterThanISTA(t *testing.T) {
	op, y, _ := sparseProblem(128, 256, 10, 43)
	const iters = 80
	lam := 1e-3
	tw, err := TwIST(op, y, TwISTOptions[float64]{Options: Options[float64]{MaxIter: iters, Tol: -1, Lambda: lam}})
	if err != nil {
		t.Fatal(err)
	}
	is, err := ISTA(op, y, Options[float64]{MaxIter: iters, Tol: -1, Lambda: lam})
	if err != nil {
		t.Fatal(err)
	}
	if tw.Objective >= is.Objective {
		t.Errorf("TwIST objective %v not better than ISTA %v after %d iters", tw.Objective, is.Objective, iters)
	}
}

func TestTwISTWarmStart(t *testing.T) {
	op, y, _ := sparseProblem(64, 128, 5, 44)
	first, err := TwIST(op, y, TwISTOptions[float64]{Options: Options[float64]{MaxIter: 2000, Tol: 1e-8, Lambda: 1e-2}})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := TwIST(op, y, TwISTOptions[float64]{Options: Options[float64]{MaxIter: 2000, Tol: 1e-8, Lambda: 1e-2, X0: first.X}})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations >= first.Iterations {
		t.Errorf("warm start took %d iterations, cold %d", warm.Iterations, first.Iterations)
	}
	if _, err := TwIST(op, y, TwISTOptions[float64]{Options: Options[float64]{X0: make([]float64, 3)}}); err == nil {
		t.Error("bad warm-start length accepted")
	}
}

func TestTwISTErrors(t *testing.T) {
	op, y, _ := sparseProblem(32, 64, 3, 45)
	bad := op
	bad.ApplyT = nil
	if _, err := TwIST(bad, y, TwISTOptions[float64]{}); err == nil {
		t.Error("nil ApplyT accepted")
	}
	if _, err := TwIST(op, y[:4], TwISTOptions[float64]{}); err == nil {
		t.Error("bad measurement length accepted")
	}
	// Out-of-range Xi1 falls back to the default rather than failing.
	if _, err := TwIST(op, y, TwISTOptions[float64]{Xi1: 5, Options: Options[float64]{MaxIter: 5}}); err != nil {
		t.Errorf("Xi1 fallback failed: %v", err)
	}
}

func TestTwISTVectorizedMatchesScalar(t *testing.T) {
	op, y, _ := sparseProblem(96, 192, 6, 46)
	a, err := TwIST(op, y, TwISTOptions[float64]{Options: Options[float64]{MaxIter: 200, Tol: -1, Lambda: 1e-3}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TwIST(op, y, TwISTOptions[float64]{Options: Options[float64]{MaxIter: 200, Tol: -1, Lambda: 1e-3, Vectorized: true}})
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(a.X, b.X); e > 1e-8 {
		t.Errorf("vectorized/scalar divergence %v", e)
	}
}

func BenchmarkTwIST128x256Iters100(b *testing.B) {
	op, y, _ := sparseProblem(128, 256, 8, 47)
	lip := 2 * linalg.PowerIterOpNorm(op, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TwIST(op, y, TwISTOptions[float64]{
			Options: Options[float64]{MaxIter: 100, Tol: -1, Lambda: 1e-3, Lipschitz: lip},
		}); err != nil {
			b.Fatal(err)
		}
	}
}
