package solver

import "csecg/internal/linalg"

// deadline is the soft wall-clock budget of one solver run, resolved
// from Options at entry. Solvers poll it every `every` iterations; when
// it fires they stop at the current iterate and flag the result
// DeadlineExpired — the best-so-far answer, never an error. Library
// code must stay deterministic (csecg-vet bans time.Now here), so the
// clock is injected; with no clock the deadline is inert.
type deadline struct {
	ns    int64
	now   func() int64
	every int
}

func newDeadline[T linalg.Float](opt *Options[T]) deadline {
	d := deadline{ns: opt.DeadlineNs, now: opt.Now, every: opt.DeadlineEvery}
	if d.every <= 0 {
		d.every = DefaultDeadlineEvery
	}
	if d.now == nil {
		d.ns = 0
	}
	return d
}

// expired reports whether the deadline has passed, polling the clock
// only on iteration multiples of the check stride.
func (d deadline) expired(iter int) bool {
	return d.ns != 0 && iter%d.every == 0 && d.now() >= d.ns
}

// DefaultDeadlineEvery is the iteration stride between deadline checks
// when Options.DeadlineEvery is zero: frequent enough that an expired
// budget costs at most a few milliseconds of overshoot, sparse enough
// that the clock read is free against the two operator applies per
// iteration.
const DefaultDeadlineEvery = 32
