package solver

import (
	"fmt"

	"csecg/internal/linalg"
)

// GPSR minimizes F(α) = ½‖Aα−y‖₂² + λ‖α‖₁ with gradient projection for
// sparse reconstruction (Figueiredo, Nowak & Wright 2007 — the paper's
// reference [9]). The l1 problem is split as α = u − v with u, v ≥ 0,
// turning it into a bound-constrained quadratic program solved by
// projected gradient steps with Barzilai-Borwein step lengths and a
// monotone safeguard.
//
// GPSR's customary objective scales the data term by one half; this
// implementation halves λ internally so Options.Lambda and
// Result.Objective keep the package-wide convention
// F = ‖Aα−y‖₂² + λ‖α‖₁, making results directly comparable with
// FISTA/ISTA/TwIST.
//
// At moderate λ GPSR typically converges in fewer iterations than
// FISTA; at very small λ (≲ ‖Aᵀy‖∞/10⁴) its projected-gradient steps
// slow down markedly — the regime the GPSR authors address with
// continuation, which callers can layer exactly as FISTAContinuation
// does.
func GPSR[T linalg.Float](a linalg.Op[T], y []T, opt Options[T]) (Result[T], error) {
	if _, err := newState(a, y, &opt); err != nil {
		return Result[T]{}, err
	}
	n := a.InDim
	u := make([]T, n)
	v := make([]T, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return Result[T]{}, fmt.Errorf("solver: warm start length %d, want %d", len(opt.X0), n)
		}
		for i, x0 := range opt.X0 {
			if x0 > 0 {
				u[i] = x0
			} else {
				v[i] = -x0
			}
		}
	}
	x := make([]T, n)        // u − v
	r := make([]T, a.OutDim) // residual A x − y
	atr := make([]T, n)      // Aᵀ r
	gu := make([]T, n)       // gradient wrt u
	gv := make([]T, n)       // gradient wrt v
	du := make([]T, n)
	dv := make([]T, n)
	dx := make([]T, n)
	adx := make([]T, a.OutDim)
	// Internal λ under GPSR's ½-data-term convention (see doc comment).
	lambda := opt.Lambda / 2

	// residual and gradients at the current point.
	refresh := func() {
		linalg.Sub(x, u, v)
		a.Apply(r, x)
		linalg.Sub(r, r, y)
		a.ApplyT(atr, r)
		for i := range gu {
			gu[i] = lambda + atr[i]
			gv[i] = lambda - atr[i]
		}
	}
	objective := func() T {
		nrm := linalg.Norm2(r)
		return nrm*nrm + 2*lambda*linalg.Norm1(x)
	}
	refresh()
	// Initial step from the Lipschitz constant (‖A‖² = L/2 under the
	// package convention).
	alpha := 2 / opt.Lipschitz
	dl := newDeadline(&opt)
	res := Result[T]{Lambda: lambda, Lipschitz: opt.Lipschitz}
	prevObj := objective()
	for k := 1; k <= opt.MaxIter; k++ {
		// Projected gradient candidate: z⁺ = max(0, z − α∇F).
		for i := range u {
			nu := u[i] - alpha*gu[i]
			if nu < 0 {
				nu = 0
			}
			nv := v[i] - alpha*gv[i]
			if nv < 0 {
				nv = 0
			}
			du[i] = nu - u[i]
			dv[i] = nv - v[i]
		}
		// Backtracking on the candidate until the objective decreases
		// (monotone GPSR). dF along (du,dv): quadratic in the scalar
		// shrink factor; halve until improvement.
		linalg.Sub(dx, du, dv)
		a.Apply(adx, dx)
		shrink := T(1)
		accepted := false
		for bt := 0; bt < 30; bt++ {
			// Trial objective computed incrementally:
			// ‖r + s·A dx‖² + 2λ‖x + s·dx as u,v sums‖₁ via u,v updates.
			var quad, lin T
			for i := range r {
				lin += r[i] * adx[i]
				quad += adx[i] * adx[i]
			}
			rr := linalg.Norm2(r)
			trial := rr*rr + 2*shrink*lin + shrink*shrink*quad
			var l1 T
			for i := range u {
				uu := u[i] + shrink*du[i]
				vv := v[i] + shrink*dv[i]
				l1 += uu + vv
			}
			trialObj := trial + 2*lambda*l1
			if trialObj <= prevObj {
				var overlap T
				for i := range u {
					u[i] += shrink * du[i]
					v[i] += shrink * dv[i]
					// Cancel the u/v overlap: x is unchanged, the l1
					// term Σ(u+v) strictly shrinks to ‖x‖₁, keeping the
					// split objective equal to F(x).
					m := u[i]
					if v[i] < m {
						m = v[i]
					}
					if m > 0 {
						u[i] -= m
						v[i] -= m
						overlap += m
					}
				}
				prevObj = trialObj - 4*lambda*overlap
				accepted = true
				break
			}
			shrink /= 2
		}
		if !accepted {
			res.Converged = true // no descent direction left at fp precision
			res.Iterations = k
			break
		}
		// Barzilai-Borwein step for the next round:
		// α = ⟨Δz, Δz⟩ / ⟨Δz, BΔz⟩ with ⟨Δz, BΔz⟩ = ‖A Δx‖².
		var num, den T
		for i := range du {
			su := shrink * du[i]
			sv := shrink * dv[i]
			num += su*su + sv*sv
		}
		for i := range adx {
			s := shrink * adx[i]
			den += s * s
		}
		if den > 0 {
			alpha = num / den
			// Clamp to a sane range around the Lipschitz step.
			lo, hi := T(0.01)/opt.Lipschitz, T(100)/opt.Lipschitz
			if alpha < lo {
				alpha = lo
			}
			if alpha > hi {
				alpha = hi
			}
		}
		refresh()
		res.Iterations = k
		if opt.Monitor != nil {
			res.Objective = objective()
			opt.Monitor(k, res.Objective)
		}
		// Convergence: relative step size.
		var stepNorm T
		for i := range du {
			s := shrink * (du[i] - dv[i])
			stepNorm += s * s
		}
		xn := linalg.Norm2(x)
		if xn < 1 {
			xn = 1
		}
		if opt.Tol > 0 && float64(stepNorm) < opt.Tol*opt.Tol*float64(xn*xn) {
			res.Converged = true
			break
		}
		if dl.expired(k) {
			res.DeadlineExpired = true
			break
		}
	}
	linalg.Sub(x, u, v)
	res.X = x
	res.Objective = objective()
	return res, nil
}
