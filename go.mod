module csecg

go 1.22
