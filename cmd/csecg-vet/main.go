// Command csecg-vet runs csecg's domain-specific static analyzers over
// the module: nofpu (no floating point in device-side packages), noalloc
// (no allocation in //csecg:hotpath functions), budget (device RAM/flash
// ledgers within the MSP430F1611 envelope), determinism (no
// nondeterminism sources in library packages) and errcheck (no dropped
// errors).
//
// Usage:
//
//	go run ./cmd/csecg-vet ./...
//
// csecg-vet exits 0 when the tree is clean, 1 when any analyzer reports
// a finding, and 2 on a load or usage error. Output is one finding per
// line in the form
//
//	file:line:col: [analyzer] message
//
// Flags: -json emits the findings as a JSON array; -suggest appends the
// nearest allowed alternative to each finding (for example
// internal/fixedpoint for float math); and each analyzer has a matching
// bool flag (-nofpu=false disables it).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"csecg/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("csecg-vet", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	suggest := fs.Bool("suggest", false, "append the nearest allowed alternative to each finding")
	all := analysis.Analyzers()
	enabled := map[string]*bool{}
	for _, a := range all {
		enabled[a.Name] = fs.Bool(a.Name, true, "run the "+a.Name+" analyzer ("+a.Doc+")")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	dir := "."
	for _, pat := range fs.Args() {
		// Patterns are informational: the analyzers always load the whole
		// module so cross-package types resolve; "./..." and directory
		// arguments select the same tree. A directory argument anchors the
		// module lookup.
		if pat != "./..." && pat != "..." {
			dir = strings.TrimSuffix(pat, "/...")
		}
	}

	mod, err := analysis.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csecg-vet: %v\n", err)
		return 2
	}

	var active []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	cfg := analysis.DefaultConfig(mod.Path)
	diags := analysis.RunModule(mod, cfg, active)

	cwd, err := os.Getwd()
	if err != nil {
		cwd = ""
	}
	for i := range diags {
		if cwd == "" {
			break
		}
		if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "csecg-vet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stdout, d.String())
			if *suggest && d.Suggestion != "" {
				fmt.Fprintf(os.Stdout, "\tsuggestion: %s\n", d.Suggestion)
			}
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
