// Command csecg-vet runs csecg's domain-specific static analyzers over
// the module: nofpu (no floating point in device-side packages,
// transitively through the call graph), noalloc (no allocation in
// //csecg:hotpath functions, also transitive), budget (device RAM/flash
// ledgers within the MSP430F1611 envelope), determinism (no
// nondeterminism sources in library packages), errcheck (no dropped
// errors), lockcheck (no blocking calls under a held mutex, consistent
// lock ordering), leakcheck (no goroutines without a shutdown path),
// metriclint (metric naming, constant label sets, registry export), and
// the v3 interval-engine analyzers: rangecheck (device-side integer
// arithmetic proven free of wraparound by abstract interpretation),
// stackcheck (worst-case device stack per entry point asserted against
// the RAMStackMisc ledger) and shiftidx (advisory, off by default:
// hotpath slice indexing the interval engine cannot prove in bounds).
//
// Usage:
//
//	go run ./cmd/csecg-vet ./...
//
// csecg-vet exits 0 when the tree is clean, 1 when any analyzer reports
// a finding, and 2 on a load or usage error. Output is one finding per
// line in the form
//
//	file:line:col: [analyzer] message
//
// Flags:
//
//	-json            emit the findings as a JSON array
//	-sarif           emit the findings as a SARIF 2.1.0 log
//	-suggest         append the nearest allowed alternative to each finding
//	-graph FILE      dump the module call graph as Graphviz DOT to FILE
//	                 ("-" for stdout)
//	-baseline FILE   suppress findings recorded in FILE (see -write-baseline)
//	-write-baseline FILE
//	                 write the current findings to FILE as a baseline and
//	                 exit 0; subsequent -baseline runs report only new
//	                 findings
//	-stack-report    print the worst-case stack bound of every device
//	                 entry point (deepest first) and exit 0
//	-<analyzer>=false
//	                 disable one analyzer (-nofpu=false, -lockcheck=false, …);
//	                 advisory analyzers (shiftidx) default to off and are
//	                 enabled the same way (-shiftidx)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"csecg/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("csecg-vet", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	suggest := fs.Bool("suggest", false, "append the nearest allowed alternative to each finding")
	graphOut := fs.String("graph", "", "dump the module call graph as Graphviz DOT to `file` (\"-\" for stdout)")
	baselinePath := fs.String("baseline", "", "suppress findings recorded in baseline `file`")
	writeBaseline := fs.String("write-baseline", "", "write current findings to baseline `file` and exit")
	stackReport := fs.Bool("stack-report", false, "print the worst-case stack bound of every device entry point and exit")
	all := analysis.Analyzers()
	enabled := map[string]*bool{}
	for _, a := range all {
		doc := "run the " + a.Name + " analyzer (" + a.Doc + ")"
		if a.Advisory {
			doc += " [advisory, off by default]"
		}
		enabled[a.Name] = fs.Bool(a.Name, !a.Advisory, doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "csecg-vet: -json and -sarif are mutually exclusive")
		return 2
	}

	dir := "."
	for _, pat := range fs.Args() {
		// Patterns are informational: the analyzers always load the whole
		// module so cross-package types resolve; "./..." and directory
		// arguments select the same tree. A directory argument anchors the
		// module lookup.
		if pat != "./..." && pat != "..." {
			dir = strings.TrimSuffix(pat, "/...")
		}
	}

	mod, err := analysis.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csecg-vet: %v\n", err)
		return 2
	}

	if *graphOut != "" {
		if code := dumpGraph(mod, *graphOut); code != 0 {
			return code
		}
	}

	if *stackReport {
		return printStackReport(mod)
	}

	var active []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	cfg := analysis.DefaultConfig(mod.Path)
	diags := analysis.RunModule(mod, cfg, active)

	cwd, err := os.Getwd()
	if err != nil {
		cwd = ""
	}
	relativize := func(name string) string {
		if cwd == "" {
			return name
		}
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
		return name
	}
	for i := range diags {
		diags[i].Pos.Filename = relativize(diags[i].Pos.Filename)
		for j := range diags[i].Related {
			diags[i].Related[j].Pos.Filename = relativize(diags[i].Related[j].Pos.Filename)
		}
	}

	if *writeBaseline != "" {
		f, err := os.Create(*writeBaseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csecg-vet: %v\n", err)
			return 2
		}
		werr := analysis.WriteBaseline(f, diags)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "csecg-vet: %v\n", werr)
			return 2
		}
		fmt.Fprintf(os.Stderr, "csecg-vet: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}

	if *baselinePath != "" {
		baseline, err := analysis.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csecg-vet: %v\n", err)
			return 2
		}
		var suppressed int
		diags, suppressed = analysis.FilterBaseline(diags, baseline)
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "csecg-vet: %d finding(s) suppressed by baseline %s\n", suppressed, *baselinePath)
		}
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "csecg-vet: %v\n", err)
			return 2
		}
	case *sarifOut:
		if err := analysis.WriteSARIF(os.Stdout, diags, active); err != nil {
			fmt.Fprintf(os.Stderr, "csecg-vet: %v\n", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(os.Stdout, d.String())
			if *suggest && d.Suggestion != "" {
				fmt.Fprintf(os.Stdout, "\tsuggestion: %s\n", d.Suggestion)
			}
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// printStackReport renders the machine-checked stack ledger: one line
// per device entry point, deepest worst case first, with the realizing
// call chain indented under each.
func printStackReport(mod *analysis.Module) int {
	bounds := analysis.DeviceStackBounds(mod, analysis.DefaultConfig(mod.Path))
	for _, b := range bounds {
		if b.Unbounded {
			fmt.Printf("%-48s unbounded (%s)\n", b.Entry, strings.Join(b.Cycle, " → "))
			continue
		}
		fmt.Printf("%-48s %5d bytes\n", b.Entry, b.Bytes)
		for _, fr := range b.Chain {
			fmt.Printf("    %-44s %5d\n", fr.Func, fr.Bytes)
		}
	}
	return 0
}

// dumpGraph writes the module call graph as DOT to path ("-" = stdout).
func dumpGraph(mod *analysis.Module, path string) int {
	g := analysis.BuildCallGraph(mod)
	if path == "-" {
		if err := g.WriteDOT(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "csecg-vet: %v\n", err)
			return 2
		}
		return 0
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csecg-vet: %v\n", err)
		return 2
	}
	werr := g.WriteDOT(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "csecg-vet: %v\n", werr)
		return 2
	}
	return 0
}
