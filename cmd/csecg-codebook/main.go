// Command csecg-codebook trains the encoder's Huffman codebook offline,
// exactly as the paper's authors did before flashing the mote: it
// collects the measurement-difference histogram over a training corpus
// of records and emits the serialized 1.5 kB codebook blob.
//
// Usage:
//
//	csecg-codebook -out codebook.bin                 # model-histogram codebook
//	csecg-codebook -out codebook.bin -records 100,200 -seconds 120
//	csecg-codebook -stats                            # print rate statistics only
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"csecg"
	"csecg/internal/core"
	"csecg/internal/ecg"
	"csecg/internal/huffman"
	"csecg/internal/metrics"
	"csecg/internal/sensing"
)

func main() {
	var (
		out     = flag.String("out", "", "output file for the serialized codebook")
		records = flag.String("records", "", "training record IDs (empty: analytic difference model)")
		seconds = flag.Float64("seconds", 60, "training seconds per record")
		cr      = flag.Float64("cr", 50, "CS compression ratio used during histogram collection")
		stats   = flag.Bool("stats", false, "print expected-rate statistics")
	)
	flag.Parse()

	freq, err := histogram(*records, *seconds, *cr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csecg-codebook: %v\n", err)
		os.Exit(1)
	}
	cb, err := huffman.Train(freq)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csecg-codebook: training: %v\n", err)
		os.Exit(1)
	}
	blob := cb.Serialize()
	fmt.Printf("codebook: %d symbols, max codeword %d bits, %.2f avg bits/symbol, %d bytes serialized\n",
		cb.NumSymbols(), cb.MaxLen(), cb.ExpectedBits(freq), len(blob))
	if *stats {
		for _, s := range []int{0, 128, 255, 256, 257, 384, 511} {
			fmt.Printf("  symbol %3d (diff %+4d): %2d bits\n", s, s-256, cb.CodeLen(s))
		}
	}
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "csecg-codebook: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// histogram collects measurement-difference symbol frequencies from the
// training records, or returns the analytic model when none are given.
func histogram(records string, seconds, cr float64) ([]int, error) {
	if records == "" {
		return csecg.DiffHistogramModel(20), nil
	}
	freq := make([]int, core.NumDiffSymbols)
	for i := range freq {
		freq[i] = 1 // add-one smoothing keeps the codebook complete
	}
	m := metrics.MForCR(cr, core.WindowSize)
	phi, err := sensing.NewSparseBinaryLCG(m, core.WindowSize, core.DefaultColumnWeight, 0xCB)
	if err != nil {
		return nil, err
	}
	for _, id := range strings.Split(records, ",") {
		rec, err := ecg.RecordByID(strings.TrimSpace(id))
		if err != nil {
			return nil, err
		}
		samples, err := rec.Channel256(seconds, 0)
		if err != nil {
			return nil, err
		}
		prev := make([]int32, m)
		y := make([]int32, m)
		cent := make([]int16, core.WindowSize)
		first := true
		for o := 0; o+core.WindowSize <= len(samples); o += core.WindowSize {
			for i := 0; i < core.WindowSize; i++ {
				cent[i] = samples[o+i] - core.ADCBaseline
			}
			phi.MeasureInt(y, cent)
			for i := range y {
				y[i] = (y[i] + 1<<(core.DefaultMeasurementShift-1)) >> core.DefaultMeasurementShift
			}
			if !first {
				for i := range y {
					d := y[i] - prev[i]
					if d >= -core.NumDiffSymbols/2 && d < core.NumDiffSymbols/2-1 {
						freq[int(d)+core.NumDiffSymbols/2]++
					} else {
						freq[core.EscapeSymbol]++
					}
				}
			}
			first = false
			copy(prev, y)
		}
	}
	return freq, nil
}
