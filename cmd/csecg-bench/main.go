// Command csecg-bench regenerates the paper's tables and figures on the
// substitute database and prints them as aligned text tables.
//
// Usage:
//
//	csecg-bench -exp all                 # everything (default subset of records)
//	csecg-bench -exp fig2,fig7           # selected experiments
//	csecg-bench -exp fig6 -all48         # full 48-record database
//	csecg-bench -exp lifetime -seconds 60
//	csecg-bench -exp fig7 -format csv    # machine-readable output
//
// Paper experiments: fig2, fig6, fig7, encoder, memory, speedup, cpu,
// lifetime, convergence. Extensions: resilience, transport, baseline,
// analog, diagnostic, holter-report. Ablations: ablation-basis,
// ablation-wavelet, ablation-solver, ablation-redundancy,
// ablation-huffman, ablation-shift.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"csecg/internal/experiments"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiment list or 'all'")
		all48   = flag.Bool("all48", false, "use the full 48-record database (slow)")
		seconds = flag.Float64("seconds", 0, "seconds of signal per record (default 24)")
		records = flag.String("records", "", "comma-separated record IDs (overrides the default subset)")
		format  = flag.String("format", "table", "output format: table or csv")
	)
	flag.Parse()
	if *format != "table" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "csecg-bench: unknown format %q\n", *format)
		os.Exit(2)
	}

	opt := experiments.Options{SecondsPerRecord: *seconds}
	if *all48 {
		opt.Records = experiments.AllRecords()
	}
	if *records != "" {
		opt.Records = strings.Split(*records, ",")
	}

	type runner struct {
		name string
		run  func() (*experiments.Table, error)
	}
	runners := []runner{
		{"fig2", func() (*experiments.Table, error) {
			r, err := experiments.Fig2(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"fig6", func() (*experiments.Table, error) {
			r, err := experiments.Fig6(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"fig7", func() (*experiments.Table, error) {
			r, err := experiments.Fig7(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"encoder", func() (*experiments.Table, error) {
			r, err := experiments.Encoder(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"memory", func() (*experiments.Table, error) {
			r, err := experiments.Memory()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"speedup", func() (*experiments.Table, error) {
			r, err := experiments.Speedup()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"cpu", func() (*experiments.Table, error) {
			r, err := experiments.CPU(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"lifetime", func() (*experiments.Table, error) {
			r, err := experiments.Lifetime(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"convergence", func() (*experiments.Table, error) {
			r, err := experiments.Convergence(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"resilience", func() (*experiments.Table, error) {
			r, err := experiments.Resilience(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"transport", func() (*experiments.Table, error) {
			r, err := experiments.Transport(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"baseline", func() (*experiments.Table, error) {
			r, err := experiments.Baseline(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"analog", func() (*experiments.Table, error) {
			r, err := experiments.Analog(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"holter-report", func() (*experiments.Table, error) {
			r, err := experiments.HolterReport(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"diagnostic", func() (*experiments.Table, error) {
			r, err := experiments.Diagnostic(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"ablation-basis", func() (*experiments.Table, error) {
			r, err := experiments.BasisAblation(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"ablation-wavelet", func() (*experiments.Table, error) {
			r, err := experiments.WaveletAblation(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"ablation-solver", func() (*experiments.Table, error) {
			r, err := experiments.SolverAblation(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"ablation-redundancy", func() (*experiments.Table, error) {
			r, err := experiments.RedundancyAblation(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"ablation-shift", func() (*experiments.Table, error) {
			r, err := experiments.ShiftAblation(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"ablation-huffman", func() (*experiments.Table, error) {
			r, err := experiments.HuffmanAblation()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
	}

	want := map[string]bool{}
	runAll := *expFlag == "all"
	if !runAll {
		for _, name := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	known := map[string]bool{}
	for _, r := range runners {
		known[r.name] = true
	}
	for name := range want {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "csecg-bench: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	exit := 0
	for _, r := range runners {
		if !runAll && !want[r.name] {
			continue
		}
		start := time.Now()
		table, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "csecg-bench: %s: %v\n", r.name, err)
			exit = 1
			continue
		}
		if *format == "csv" {
			fmt.Print(table.CSV())
			fmt.Println()
		} else {
			fmt.Println(table.Render())
			fmt.Printf("(%s took %.1fs)\n\n", r.name, time.Since(start).Seconds())
		}
	}
	os.Exit(exit)
}
