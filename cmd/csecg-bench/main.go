// Command csecg-bench regenerates the paper's tables and figures on the
// substitute database and prints them as aligned text tables.
//
// Usage:
//
//	csecg-bench -exp all                 # everything (default subset of records)
//	csecg-bench -exp fig2,fig7           # selected experiments
//	csecg-bench -exp fig6 -all48         # full 48-record database
//	csecg-bench -exp lifetime -seconds 60
//	csecg-bench -exp fig7 -format csv    # machine-readable output
//
// Observability:
//
//	csecg-bench -exp transport -trace out.json    # Chrome trace of every window
//	csecg-bench -exp cpu -metrics metrics.prom    # Prometheus text dump
//	csecg-bench -exp cpu -events events.jsonl     # JSONL event log
//	csecg-bench -exp all -pprof cpu.pprof         # CPU+mutex+block profiles
//
// Performance tracking:
//
//	csecg-bench -json BENCH.json                  # machine-readable perf suite
//	csecg-bench -compare BENCH_4.json             # fail on >15% normalized regression
//
// Robustness:
//
//	csecg-bench -exp chaos                        # full survival matrix
//	csecg-bench -exp chaos -short                 # CI smoke (shrunk sessions)
//
// Paper experiments: fig2, fig6, fig7, encoder, memory, speedup, cpu,
// lifetime, convergence. Extensions: resilience, transport, baseline,
// analog, diagnostic, holter-report, chaos. Ablations: ablation-basis,
// ablation-wavelet, ablation-solver, ablation-redundancy,
// ablation-huffman, ablation-shift.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"csecg"
	"csecg/internal/bench"
	"csecg/internal/experiments"
	"csecg/internal/prof"
)

// writeFile streams telemetry output to the named file ("-" → stdout).
func writeFile(kind, path string, write func(w *os.File) error) {
	f := os.Stdout
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csecg-bench: %s: %v\n", kind, err)
			os.Exit(1)
		}
		defer f.Close() //csecg:errok output file, write errors surface below
	}
	if err := write(f); err != nil {
		fmt.Fprintf(os.Stderr, "csecg-bench: %s: %v\n", kind, err)
		os.Exit(1)
	}
}

func main() { os.Exit(run()) }

// run holds the real main so deferred telemetry/profile writers execute
// before the process exits.
func run() int {
	var (
		expFlag     = flag.String("exp", "all", "comma-separated experiment list or 'all'")
		all48       = flag.Bool("all48", false, "use the full 48-record database (slow)")
		seconds     = flag.Float64("seconds", 0, "seconds of signal per record (default 24)")
		records     = flag.String("records", "", "comma-separated record IDs (overrides the default subset)")
		format      = flag.String("format", "table", "output format: table or csv")
		metricsFile = flag.String("metrics", "", "write a Prometheus text metrics dump to this file ('-' for stdout)")
		traceFile   = flag.String("trace", "", "write a Chrome trace_event JSON of every window lifecycle to this file")
		eventsFile  = flag.String("events", "", "write the trace as a JSONL event log to this file")
		pprofFile   = flag.String("pprof", "", "write Go CPU/mutex/block profiles of the run to this file (+.mutex/.block)")
		jsonFile    = flag.String("json", "", "run the perf suite and write the machine-readable summary to this file ('-' for stdout)")
		compareFile = flag.String("compare", "", "run the perf suite and fail on normalized regressions against this baseline summary")
		tolerance   = flag.Float64("tolerance", bench.DefaultTolerance, "allowed normalized-time growth before -compare fails")
		short       = flag.Bool("short", false, "shrink long-running experiments (chaos) to CI-smoke size")
		recordDir   = flag.String("record-dir", "", "attach a black-box flight recorder to chaos scenarios and seal diagnostics bundles into this directory")
		spansFile   = flag.String("spans", "", "capture causal span trees during chaos scenarios and write them as trace JSONL to this file ('-' for stdout; csecg-triage input)")
	)
	flag.Parse()
	if *format != "table" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "csecg-bench: unknown format %q\n", *format)
		os.Exit(2)
	}

	opt := experiments.Options{SecondsPerRecord: *seconds}
	if *all48 {
		opt.Records = experiments.AllRecords()
	}
	if *records != "" {
		opt.Records = strings.Split(*records, ",")
	}
	if *metricsFile != "" {
		opt.Metrics = csecg.NewMetrics()
	}
	var tracer *csecg.Tracer
	if *traceFile != "" || *eventsFile != "" {
		tracer = csecg.NewTracer(nil)
		opt.Trace = tracer
	}
	if *pprofFile != "" {
		p, err := prof.Start(*pprofFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csecg-bench: pprof: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := p.Stop(); err != nil {
				fmt.Fprintf(os.Stderr, "csecg-bench: pprof: %v\n", err)
			}
		}()
	}

	if *jsonFile != "" || *compareFile != "" {
		return runPerf(*jsonFile, *compareFile, *tolerance)
	}

	type runner struct {
		name string
		run  func() (*experiments.Table, error)
	}
	runners := []runner{
		{"fig2", func() (*experiments.Table, error) {
			r, err := experiments.Fig2(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"fig6", func() (*experiments.Table, error) {
			r, err := experiments.Fig6(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"fig7", func() (*experiments.Table, error) {
			r, err := experiments.Fig7(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"encoder", func() (*experiments.Table, error) {
			r, err := experiments.Encoder(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"memory", func() (*experiments.Table, error) {
			r, err := experiments.Memory()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"speedup", func() (*experiments.Table, error) {
			r, err := experiments.Speedup()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"cpu", func() (*experiments.Table, error) {
			r, err := experiments.CPU(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"lifetime", func() (*experiments.Table, error) {
			r, err := experiments.Lifetime(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"convergence", func() (*experiments.Table, error) {
			r, err := experiments.Convergence(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"resilience", func() (*experiments.Table, error) {
			r, err := experiments.Resilience(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"transport", func() (*experiments.Table, error) {
			r, err := experiments.Transport(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"baseline", func() (*experiments.Table, error) {
			r, err := experiments.Baseline(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"analog", func() (*experiments.Table, error) {
			r, err := experiments.Analog(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"holter-report", func() (*experiments.Table, error) {
			r, err := experiments.HolterReport(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"diagnostic", func() (*experiments.Table, error) {
			r, err := experiments.Diagnostic(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"ablation-basis", func() (*experiments.Table, error) {
			r, err := experiments.BasisAblation(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"ablation-wavelet", func() (*experiments.Table, error) {
			r, err := experiments.WaveletAblation(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"ablation-solver", func() (*experiments.Table, error) {
			r, err := experiments.SolverAblation(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"ablation-redundancy", func() (*experiments.Table, error) {
			r, err := experiments.RedundancyAblation(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"ablation-shift", func() (*experiments.Table, error) {
			r, err := experiments.ShiftAblation(opt)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"ablation-huffman", func() (*experiments.Table, error) {
			r, err := experiments.HuffmanAblation()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"chaos", func() (*experiments.Table, error) {
			r, err := experiments.ChaosTraced(*short, *recordDir, *spansFile != "")
			if err != nil {
				return nil, err
			}
			if *recordDir != "" {
				for _, row := range r.Rows {
					for _, b := range row.Bundles {
						fmt.Printf("chaos %s: sealed %s\n", row.Report.Scenario, b)
					}
				}
			}
			if *spansFile != "" {
				out := os.Stdout
				if *spansFile != "-" {
					f, err := os.Create(*spansFile)
					if err != nil {
						return nil, err
					}
					defer f.Close() //csecg:errok WriteTraces reports the write error
					out = f
				}
				if err := r.WriteTraces(out); err != nil {
					return nil, err
				}
				if *spansFile != "-" {
					fmt.Printf("chaos: wrote %d span trees to %s\n", len(r.Traces), *spansFile)
				}
			}
			if fails := r.Failures(); len(fails) > 0 {
				fmt.Println(r.Table().Render())
				return nil, fmt.Errorf("survival contract violated: %s", strings.Join(fails, "; "))
			}
			return r.Table(), nil
		}},
	}

	want := map[string]bool{}
	runAll := *expFlag == "all"
	if !runAll {
		for _, name := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	known := map[string]bool{}
	for _, r := range runners {
		known[r.name] = true
	}
	for name := range want {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "csecg-bench: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	exit := 0
	for _, r := range runners {
		if !runAll && !want[r.name] {
			continue
		}
		start := time.Now()
		table, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "csecg-bench: %s: %v\n", r.name, err)
			exit = 1
			continue
		}
		if *format == "csv" {
			fmt.Print(table.CSV())
			fmt.Println()
		} else {
			fmt.Println(table.Render())
			fmt.Printf("(%s took %.1fs)\n\n", r.name, time.Since(start).Seconds())
		}
	}

	if opt.Metrics != nil {
		writeFile("metrics", *metricsFile, func(w *os.File) error {
			return csecg.WriteMetrics(w, opt.Metrics)
		})
	}
	if tracer != nil && *traceFile != "" {
		writeFile("trace", *traceFile, func(w *os.File) error {
			return csecg.WriteChromeTrace(w, tracer)
		})
	}
	if tracer != nil && *eventsFile != "" {
		writeFile("events", *eventsFile, func(w *os.File) error {
			return csecg.WriteTraceJSONL(w, tracer)
		})
	}
	return exit
}
