package main

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"csecg"
	"csecg/internal/bench"
)

// calibSink keeps the calibration loop's result alive past dead-code
// elimination.
var calibSink float32

// benchCalibration is the fixed floating-point workload every other
// benchmark is normalized against: a 4096-element float32 multiply-
// accumulate sweep, the same arithmetic the FISTA hot loops spend
// their time in. Its absolute speed varies per machine; the ratio of
// any pipeline benchmark to it does not, which is what makes the
// committed baseline comparable across CI runners.
func benchCalibration(b *testing.B) {
	x := make([]float32, 4096)
	y := make([]float32, 4096)
	for i := range x {
		x[i] = float32(i%7) * 0.25
		y[i] = float32(i%5) * 0.5
	}
	b.ReportAllocs()
	b.ResetTimer()
	var acc float32
	for i := 0; i < b.N; i++ {
		for j := range x {
			y[j] = y[j]*0.999 + x[j]*0.001
			acc += y[j]
		}
	}
	calibSink = acc
}

// nsPerOp converts a benchmark result to float ns/op.
func nsPerOp(r testing.BenchmarkResult) float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// perfSuite measures the pipeline's representative costs and returns
// the normalized summary.
func perfSuite() (*bench.Summary, error) {
	rec, err := csecg.RecordByID("100")
	if err != nil {
		return nil, err
	}
	adc, err := rec.Channel256(4, 0)
	if err != nil {
		return nil, err
	}
	win := adc[:csecg.WindowSize]

	mkCodec := func(cr float64) (*csecg.Encoder, *csecg.Decoder32, error) {
		p := csecg.Params{Seed: 0x601, M: csecg.MForCR(cr, csecg.WindowSize)}
		enc, err := csecg.NewEncoder(p)
		if err != nil {
			return nil, nil, err
		}
		dec, err := csecg.NewDecoder32(p)
		if err != nil {
			return nil, nil, err
		}
		return enc, dec, nil
	}
	decodeBench := func(cr float64) (func(*testing.B), error) {
		enc, dec, err := mkCodec(cr)
		if err != nil {
			return nil, err
		}
		pkt, err := enc.EncodeWindow(win)
		if err != nil {
			return nil, err
		}
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dec.DecodePacket(pkt); err != nil {
					b.Fatal(err)
				}
			}
		}, nil
	}

	encCR50, _, err := mkCodec(50)
	if err != nil {
		return nil, err
	}
	decode50, err := decodeBench(50)
	if err != nil {
		return nil, err
	}
	decode80, err := decodeBench(80)
	if err != nil {
		return nil, err
	}

	reg := csecg.NewMetrics()
	for i := 0; i < 40; i++ {
		reg.Counter("perf_ops_total").Inc()
		reg.Gauge("perf_queue_depth").Set(int64(i))
		reg.Histogram("perf_latency_ns").Observe(int64(1) << uint(i%40))
	}

	suite := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"encode_window_cr50", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := encCR50.EncodeWindow(win); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"decode_window_cr50", decode50},
		{"decode_window_cr80", decode80},
		{"prometheus_export", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := csecg.WriteMetrics(io.Discard, reg); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	calib := testing.Benchmark(benchCalibration)
	s := &bench.Summary{
		Schema:        bench.Schema,
		GoOS:          runtime.GOOS,
		GoArch:        runtime.GOARCH,
		CalibrationNs: nsPerOp(calib),
	}
	for _, entry := range suite {
		r := testing.Benchmark(entry.fn)
		s.Results = append(s.Results, bench.Result{
			Name:        entry.name,
			NsPerOp:     nsPerOp(r),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	return s, nil
}

// runPerf runs the suite, optionally writing the summary and comparing
// against a committed baseline. It returns the process exit code.
func runPerf(jsonFile, compareFile string, tolerance float64) int {
	s, err := perfSuite()
	if err != nil {
		fmt.Fprintf(os.Stderr, "csecg-bench: perf: %v\n", err)
		return 1
	}
	fmt.Printf("perf suite (calibration %.0f ns/op on %s/%s):\n", s.CalibrationNs, s.GoOS, s.GoArch)
	for _, r := range s.Results {
		fmt.Printf("  %-24s %12.0f ns/op %10.2f norm %6d allocs/op\n",
			r.Name, r.NsPerOp, r.Normalized, r.AllocsPerOp)
	}
	if jsonFile != "" {
		writeFile("json", jsonFile, func(w *os.File) error { return s.Write(w) })
	}
	if compareFile == "" {
		return 0
	}
	f, err := os.Open(compareFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csecg-bench: compare: %v\n", err)
		return 1
	}
	baseline, err := bench.Read(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "csecg-bench: compare: %v\n", err)
		return 1
	}
	deltas, err := bench.Compare(baseline, s, tolerance)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csecg-bench: compare: %v\n", err)
		return 1
	}
	fmt.Printf("\nvs %s (tolerance %+.0f%%):\n", compareFile, tolerance*100)
	for _, d := range deltas {
		mark := "ok"
		if d.Regressed {
			mark = "REGRESSED"
		}
		fmt.Printf("  %-24s %8.2f → %8.2f norm (%+6.1f%%)  %s\n",
			d.Name, d.Baseline, d.Current, (d.Ratio-1)*100, mark)
	}
	if regs := bench.Regressions(deltas); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "csecg-bench: %d benchmark(s) regressed past %.0f%%\n",
			len(regs), tolerance*100)
		return 1
	}
	return 0
}
