// Command csecg-decode reconstructs a packet stream produced by
// csecg-encode and reports the recovery quality against the original
// record — the tool equivalent of the paper's iPhone decoder.
//
// The pipeline parameters (seed, CR, record) must match the encoder's;
// they are not carried in the stream, exactly as the mote and
// coordinator share them out of band.
//
// Usage:
//
//	csecg-decode -in stream.bin -record 100 -seconds 60 -cr 50
//	csecg-decode -in stream.bin -record 100 -cr 50 -bits 64 -csv out.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"csecg"
)

func main() {
	var (
		in      = flag.String("in", "", "packet stream file (required)")
		record  = flag.String("record", "100", "record ID the stream was encoded from")
		channel = flag.Int("channel", 0, "record channel")
		seconds = flag.Float64("seconds", 60, "seconds that were encoded")
		cr      = flag.Float64("cr", 50, "CS compression ratio used by the encoder")
		seed    = flag.Uint("seed", 0xBEEF, "sensing-matrix seed used by the encoder")
		bits    = flag.Int("bits", 32, "decoder precision: 32 (real-time build) or 64 (reference)")
		csvPath = flag.String("csv", "", "write original,reconstruction sample pairs as CSV")
	)
	flag.Parse()
	if *in == "" {
		fail(fmt.Errorf("missing -in"))
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fail(err)
	}
	rec, err := csecg.RecordByID(*record)
	if err != nil {
		fail(err)
	}
	ref, err := rec.Channel256(*seconds, *channel)
	if err != nil {
		fail(err)
	}
	params := csecg.Params{Seed: uint16(*seed), M: csecg.MForCR(*cr, csecg.WindowSize)}

	var decode func(pkt *csecg.Packet) ([]int16, int, error)
	switch *bits {
	case 32:
		dec, err := csecg.NewDecoder32(params)
		if err != nil {
			fail(err)
		}
		decode = func(pkt *csecg.Packet) ([]int16, int, error) {
			r, err := dec.DecodePacket(pkt)
			if err != nil {
				return nil, 0, err
			}
			return r.Samples, r.Iterations, nil
		}
	case 64:
		dec, err := csecg.NewDecoder64(params)
		if err != nil {
			fail(err)
		}
		decode = func(pkt *csecg.Packet) ([]int16, int, error) {
			r, err := dec.DecodePacket(pkt)
			if err != nil {
				return nil, 0, err
			}
			return r.Samples, r.Iterations, nil
		}
	default:
		fail(fmt.Errorf("bits must be 32 or 64"))
	}

	var csv *strings.Builder
	if *csvPath != "" {
		csv = &strings.Builder{}
		csv.WriteString("sample,original,reconstruction\n")
	}
	var windows, iterSum, sampleIdx int
	var sumPRDN float64
	var prCount int
	for len(data) > 0 {
		pkt, n, err := csecg.UnmarshalPacket(data)
		if err != nil {
			fail(fmt.Errorf("parsing packet %d: %w", windows, err))
		}
		data = data[n:]
		samples, iters, err := decode(pkt)
		if err != nil {
			fail(fmt.Errorf("decoding packet %d: %w", windows, err))
		}
		iterSum += iters
		base := windows * csecg.WindowSize
		if base+csecg.WindowSize <= len(ref) {
			orig := make([]float64, csecg.WindowSize)
			reco := make([]float64, csecg.WindowSize)
			for i := 0; i < csecg.WindowSize; i++ {
				orig[i] = float64(ref[base+i])
				reco[i] = float64(samples[i])
				if csv != nil {
					fmt.Fprintf(csv, "%d,%d,%d\n", sampleIdx, ref[base+i], samples[i])
					sampleIdx++
				}
			}
			if windows > 0 { // skip cold-start window in the statistics
				if prdn, err := csecg.PRDN(orig, reco); err == nil {
					sumPRDN += prdn
					prCount++
				}
			}
		}
		windows++
	}
	if windows == 0 {
		fail(fmt.Errorf("empty stream"))
	}
	fmt.Printf("decoded %d packets with the %d-bit build\n", windows, *bits)
	fmt.Printf("  mean iterations/packet: %.0f\n", float64(iterSum)/float64(windows))
	if prCount > 0 {
		mean := sumPRDN / float64(prCount)
		fmt.Printf("  mean PRDN: %.2f%%  (SNR %.1f dB)\n", mean, csecg.SNR(mean))
	}
	if csv != nil {
		if err := os.WriteFile(*csvPath, []byte(csv.String()), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("  samples written to %s\n", *csvPath)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "csecg-decode: %v\n", err)
	os.Exit(1)
}
