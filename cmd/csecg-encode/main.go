// Command csecg-encode runs the mote-side compressor over a substitute
// database record and writes the packet stream, reporting compression
// and the modeled MSP430 cost — the tool equivalent of feeding a record
// into the ShimmerTM over its serial port.
//
// Usage:
//
//	csecg-encode -record 100 -seconds 60 -cr 50 -out stream.bin
//	csecg-encode -record 208 -seconds 120 -cr 70 -seed 99 -out /tmp/s.bin
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"csecg"
)

func main() {
	var (
		record  = flag.String("record", "100", "substitute database record ID")
		channel = flag.Int("channel", 0, "record channel (0 or 1)")
		seconds = flag.Float64("seconds", 60, "seconds of signal to encode")
		cr      = flag.Float64("cr", 50, "target CS compression ratio (percent)")
		seed    = flag.Uint("seed", 0xBEEF, "sensing-matrix seed (16-bit)")
		out     = flag.String("out", "", "output file for the packet stream (default stdout off)")
	)
	flag.Parse()

	rec, err := csecg.RecordByID(*record)
	if err != nil {
		fail(err)
	}
	samples, err := rec.Channel256(*seconds, *channel)
	if err != nil {
		fail(err)
	}
	params := csecg.Params{Seed: uint16(*seed), M: csecg.MForCR(*cr, csecg.WindowSize)}
	mote, err := csecg.NewMote(params)
	if err != nil {
		fail(err)
	}

	var w *bufio.Writer
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		outFile = f
		w = bufio.NewWriter(f)
	}

	var rawBits, compBits, windows int
	for o := 0; o+csecg.WindowSize <= len(samples); o += csecg.WindowSize {
		rep, err := mote.EncodeWindow(samples[o : o+csecg.WindowSize])
		if err != nil {
			fail(err)
		}
		windows++
		rawBits += csecg.WindowSize * 12
		compBits += rep.Packet.WireSize() * 8
		if w != nil {
			blob, err := csecg.MarshalPacket(rep.Packet)
			if err != nil {
				fail(err)
			}
			if _, err := w.Write(blob); err != nil {
				fail(err)
			}
		}
	}
	if w != nil {
		// A dropped flush or close error here would silently truncate the
		// packet stream on disk.
		if err := w.Flush(); err != nil {
			fail(err)
		}
		if err := outFile.Close(); err != nil {
			fail(err)
		}
	}
	fmt.Printf("record %s: %d windows (%.0f s) encoded\n", *record, windows, float64(windows)*2)
	fmt.Printf("  wire CR:            %.1f%% (raw %d B -> %d B)\n",
		csecg.CR(rawBits, compBits), rawBits/8, compBits/8)
	fmt.Printf("  mote CPU (modeled): %.2f%% of an MSP430 @ 8 MHz\n", mote.AverageCPUUsage()*100)
	fmt.Printf("  measure latency:    %v per 2 s window (d=%d)\n",
		mote.MeasurementLatency(), mote.Params().D)
	if *out != "" {
		fmt.Printf("  stream written to %s\n", *out)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "csecg-encode: %v\n", err)
	os.Exit(1)
}
