// Command csecg-replay deterministically re-executes diagnostics
// bundles sealed by the black-box flight recorder: it reconstructs the
// decoder stack from the bundle's session metadata, feeds the captured
// post-CRC frames back through the real transport receiver and solver
// on an injected clock, and diffs every re-decoded window against the
// recorded summaries.
//
// Complete bundles (full session history) must reproduce bit-for-bit;
// bundles whose ring wrapped are resumed mid-stream and compared on
// the solver-determined fields only. Bundles marked unreproducible
// (e.g. chaos slowdown injection) are skipped unless -strict.
//
// Usage:
//
//	csecg-replay bundle.jsonl [more.jsonl...]
//	csecg-replay -v bundle.jsonl       # print each divergence
//	csecg-replay -strict bundles/*.jsonl
//
// Exit status: 0 when every bundle replays clean, 1 on any divergence
// (or, with -strict, any skipped bundle), 2 on usage/parse errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"csecg"
)

func main() {
	var (
		verbose = flag.Bool("v", false, "print every divergence, not just the summary line")
		strict  = flag.Bool("strict", false, "fail on bundles that were skipped as unreproducible")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: csecg-replay [-v] [-strict] bundle.jsonl...")
		os.Exit(2)
	}

	exit := 0
	for _, path := range flag.Args() {
		b, err := csecg.ReadBundle(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csecg-replay: %s: %v\n", path, err)
			os.Exit(2)
		}
		rep, err := csecg.ReplayBundle(b)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csecg-replay: %s: %v\n", path, err)
			os.Exit(2)
		}
		switch {
		case rep.Skipped:
			fmt.Printf("%s: SKIP session=%s cause=%s (%s)\n", path, rep.Session, rep.Cause, rep.SkipReason)
			if *strict {
				exit = 1
			}
		case rep.OK():
			mode := "wrapped"
			if rep.Complete {
				mode = "complete"
			}
			fmt.Printf("%s: OK session=%s cause=%s mode=%s windows=%d compared=%d rung-skipped=%d\n",
				path, rep.Session, rep.Cause, mode, rep.Windows, rep.Compared, rep.RungSkipped)
		default:
			fmt.Printf("%s: DIVERGED session=%s cause=%s compared=%d missing=%d divergences=%d\n",
				path, rep.Session, rep.Cause, rep.Compared, rep.Missing, len(rep.Divergences))
			if *verbose {
				for _, d := range rep.Divergences {
					fmt.Printf("  ordinal=%d seq=%d field=%s want=%s got=%s\n",
						d.Ordinal, d.Seq, d.Field, d.Want, d.Got)
				}
			}
			exit = 1
		}
	}
	os.Exit(exit)
}
