// Command csecg-monitor serves the fleet observability plane: it
// streams one or more records through the full mote→link→coordinator
// pipeline (optionally over a bursty channel with the NACK protocol)
// and exposes live status over HTTP while they run —
//
//	/metrics   Prometheus text, every session labeled
//	/healthz   process liveness
//	/readyz    503 until every live coordinator is keyed and decoding
//	/sessions  per-stream JSON: quality estimates, transport, SLOs
//
// plus net/http/pprof under /debug/pprof/.
//
// Usage:
//
//	csecg-monitor -records 100,213 -seconds 60 -cr 50
//	csecg-monitor -records 100 -burst 0.05 -nack -slo-events slo.jsonl -once
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync"

	"csecg"
	"csecg/internal/monitor"
)

// syncWriter serializes JSONL appends from concurrent sessions.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//csecg:lockok serializing this write is the type's entire purpose
	return s.w.Write(p)
}

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:9102", "HTTP listen address (use :0 for an ephemeral port)")
		records   = flag.String("records", "100", "comma-separated substitute-database record IDs to stream")
		seconds   = flag.Float64("seconds", 60, "seconds of signal per session")
		cr        = flag.Float64("cr", 50, "CS compression ratio")
		seed      = flag.Uint("seed", 0x601, "sensing-matrix seed")
		burst     = flag.Float64("burst", 0, "Gilbert–Elliott good→bad transition probability (0 = clean link)")
		recovery  = flag.Float64("burst-recovery", 0.4, "Gilbert–Elliott bad→good transition probability")
		nack      = flag.Bool("nack", false, "enable the NACK control channel and retransmission")
		sloEvents = flag.String("slo-events", "", "append SLO alert transitions as JSONL to this file ('-' for stdout)")
		spansOut  = flag.String("spans-out", "", "write the retained causal span trees of every session as trace JSONL to this file (csecg-triage input)")
		noSpans   = flag.Bool("no-spans", false, "disable causal span tracing (drops trace IDs from /sessions and the stage-seconds exemplars from /metrics)")
		recordDir = flag.String("record-dir", "", "attach a black-box flight recorder per session and seal diagnostics bundles into this directory (also enables POST /debug/bundle)")
		once      = flag.Bool("once", false, "exit after every session finishes instead of serving forever")
	)
	flag.Parse()

	var sink io.Writer
	if *sloEvents != "" {
		f := os.Stdout
		if *sloEvents != "-" {
			var err error
			if f, err = os.Create(*sloEvents); err != nil {
				fail(err)
			}
			defer f.Close() //csecg:errok event log, flushed per line
		}
		sink = &syncWriter{w: f}
	}

	srv := monitor.NewServer(nil)
	var wg sync.WaitGroup
	var run []func()
	var tracers []*csecg.SpanTracer
	for _, rec := range strings.Split(*records, ",") {
		rec = strings.TrimSpace(rec)
		if rec == "" {
			continue
		}
		reg := csecg.NewMetrics()
		var recorder *csecg.FlightRecorder
		if *recordDir != "" {
			recorder = csecg.NewFlightRecorder(csecg.FlightRecorderConfig{
				Session: "record-" + rec,
				Sink:    csecg.BundleDirSink(*recordDir),
			})
		}
		var spans *csecg.SpanTracer
		if !*noSpans {
			spans = csecg.NewSpanTracer(csecg.SpanTracerConfig{Label: "record " + rec})
			tracers = append(tracers, spans)
		}
		ses := monitor.NewSession(monitor.SessionConfig{
			Name:     "record " + rec,
			Registry: reg,
			Recorder: recorder,
			Spans:    spans,
		}, sink)
		srv.Attach(ses)
		wg.Add(1)
		recID := rec
		run = append(run, func() {
			defer wg.Done()
			defer ses.Finish()
			lnk := csecg.DefaultLinkConfig()
			if *burst > 0 {
				lnk.Burst = &csecg.BurstConfig{PGoodBad: *burst, PBadGood: *recovery}
				lnk.Seed = uint64(*seed)
			}
			rep, err := csecg.RunStream(csecg.StreamConfig{
				RecordID:  recID,
				Seconds:   *seconds,
				Params:    csecg.Params{Seed: uint16(*seed), M: csecg.MForCR(*cr, csecg.WindowSize)},
				Link:      lnk,
				Transport: csecg.TransportConfig{NACK: *nack},
				Metrics:   reg,
				Observer:  ses,
				Recorder:  recorder,
				Spans:     spans,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "csecg-monitor: record %s: %v\n", recID, err)
				return
			}
			fmt.Printf("record %s done: %d windows, %d lost, %d est-bad, mean est PRDN %.2f%% (true %.2f%%), %d gaps, %d bundles\n",
				recID, rep.Windows, rep.Lost, rep.BadWindows, rep.MeanEstPRDN, rep.MeanPRDN, rep.Transport.Gaps, rep.BundlesWritten)
		})
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail(err)
	}
	fmt.Printf("csecg-monitor listening on http://%s (/metrics /healthz /readyz /sessions)\n", ln.Addr())
	httpSrv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	for _, r := range run {
		go r()
	}
	wg.Wait()
	if *spansOut != "" {
		var recs []csecg.SpanTraceRecord
		for _, t := range tracers {
			recs = append(recs, t.Records()...)
		}
		f, err := os.Create(*spansOut)
		if err != nil {
			fail(err)
		}
		if err := csecg.WriteSpanTraceJSONL(f, recs); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d retained span trees to %s\n", len(recs), *spansOut)
	}
	if !*once {
		fmt.Println("all sessions finished; serving final state (ctrl-c to exit)")
		if err := <-serveErr; err != nil && err != http.ErrServerClosed {
			fail(err)
		}
		return
	}
	// Drain before closing: refuse new scrape/bundle work, then wait for
	// in-flight handlers and bundle writes to land on disk.
	srv.BeginDrain()
	srv.WaitIdle()
	if err := httpSrv.Close(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "csecg-monitor: %v\n", err)
	os.Exit(1)
}
