// Command csecg-holter produces a Holter-style clinical report for a
// substitute-database record after a round trip through the CS
// pipeline, with every number computed twice — on the original signal
// and on the reconstruction — so the report shows exactly what the
// compression preserves.
//
// Usage:
//
//	csecg-holter -record 202 -seconds 300 -cr 50
//	csecg-holter -record 202 -trace out.json -metrics metrics.prom -pprof cpu.pprof
//
// -pprof also arms the mutex and block profilers and writes
// cpu.pprof.mutex and cpu.pprof.block alongside the CPU profile.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"csecg"
	"csecg/internal/prof"
)

func main() {
	var (
		record      = flag.String("record", "106", "substitute database record ID")
		seconds     = flag.Float64("seconds", 300, "seconds to analyze")
		cr          = flag.Float64("cr", 50, "CS compression ratio")
		seed        = flag.Uint("seed", 0x601, "sensing-matrix seed")
		metricsFile = flag.String("metrics", "", "write a Prometheus text metrics dump to this file ('-' for stdout)")
		traceFile   = flag.String("trace", "", "write a Chrome trace_event JSON of the analysis to this file")
		eventsFile  = flag.String("events", "", "write the trace as a JSONL event log to this file")
		pprofFile   = flag.String("pprof", "", "write a Go CPU profile of the run to this file")
	)
	flag.Parse()

	if *pprofFile != "" {
		p, err := prof.Start(*pprofFile)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := p.Stop(); err != nil {
				fmt.Fprintf(os.Stderr, "csecg-holter: pprof: %v\n", err)
			}
		}()
	}
	var reg *csecg.Metrics
	if *metricsFile != "" {
		reg = csecg.NewMetrics()
	}
	var tr *csecg.Tracer
	var pidEnc, pidDec int64
	if *traceFile != "" || *eventsFile != "" {
		tr = csecg.NewTracer(nil)
		s := tr.NewSession("holter record " + *record)
		pidEnc, pidDec = s.Mote, s.Coordinator
		tr.ThreadName(pidEnc, 1, "encode")
		tr.ThreadName(pidDec, 1, "decode")
	}

	rec, err := csecg.RecordByID(*record)
	if err != nil {
		fail(err)
	}
	adc, err := rec.Channel256(*seconds, 0)
	if err != nil {
		fail(err)
	}
	params := csecg.Params{Seed: uint16(*seed), M: csecg.MForCR(*cr, csecg.WindowSize)}
	enc, err := csecg.NewEncoder(params)
	if err != nil {
		fail(err)
	}
	dec, err := csecg.NewDecoder32(params)
	if err != nil {
		fail(err)
	}
	var orig, recon []float64
	for o := 0; o+csecg.WindowSize <= len(adc); o += csecg.WindowSize {
		win := adc[o : o+csecg.WindowSize]
		var encEnd, decEnd func(args ...csecg.TraceArg)
		encStart := time.Now()
		if tr != nil {
			encEnd = tr.Begin(pidEnc, 1, "encode", "holter")
		}
		pkt, err := enc.EncodeWindow(win)
		if err != nil {
			fail(err)
		}
		if encEnd != nil {
			encEnd(csecg.TraceI("seq", int64(pkt.Seq)), csecg.TraceI("bytes", int64(pkt.WireSize())))
		}
		decStart := time.Now()
		if tr != nil {
			decEnd = tr.Begin(pidDec, 1, "decode", "holter")
		}
		out, err := dec.DecodePacket(pkt)
		if err != nil {
			fail(err)
		}
		if decEnd != nil {
			decEnd(csecg.TraceI("seq", int64(pkt.Seq)), csecg.TraceI("iterations", int64(out.Iterations)))
		}
		if reg != nil {
			reg.Counter("holter_windows_total").Inc()
			reg.Histogram("holter_encode_wall_ns").Observe(decStart.Sub(encStart).Nanoseconds())
			reg.Histogram("holter_decode_wall_ns").Observe(time.Since(decStart).Nanoseconds())
			reg.Histogram("holter_iterations").Observe(int64(out.Iterations))
		}
		for i := range win {
			orig = append(orig, float64(win[i]))
			recon = append(recon, float64(out.Samples[i]))
		}
	}
	det, err := csecg.NewQRSDetector(csecg.FsMote)
	if err != nil {
		fail(err)
	}
	beatsOf := func(x []float64) []csecg.HolterBeat {
		var beats []csecg.HolterBeat
		for _, b := range det.DetectBeats(x) {
			beats = append(beats, csecg.HolterBeat{
				Time:        float64(b.Sample) / csecg.FsMote,
				Ventricular: b.Ventricular,
			})
		}
		return beats
	}
	origBeats, reconBeats := beatsOf(orig), beatsOf(recon)

	fmt.Printf("HOLTER REPORT — record %s (%s)\n", rec.ID, rec.Description)
	fmt.Printf("%.1f min analyzed through the CS pipeline at CR %.0f%%\n\n", *seconds/60, *cr)
	fmt.Printf("%-28s %12s %12s\n", "", "original", "reconstructed")

	refRep, err := csecg.AnalyzeHolter(origBeats)
	if err != nil {
		fail(err)
	}
	gotRep, err := csecg.AnalyzeHolter(reconBeats)
	if err != nil {
		fail(err)
	}
	rowF := func(name string, a, b float64) { fmt.Printf("%-28s %12.1f %12.1f\n", name, a, b) }
	rowF("beats", float64(refRep.Beats), float64(gotRep.Beats))
	rowF("mean HR (bpm)", refRep.MeanHR, gotRep.MeanHR)
	rowF("HR min (bpm)", refRep.MinHR, gotRep.MinHR)
	rowF("HR max (bpm)", refRep.MaxHR, gotRep.MaxHR)
	rowF("SDNN (ms)", refRep.SDNN, gotRep.SDNN)
	rowF("RMSSD (ms)", refRep.RMSSD, gotRep.RMSSD)
	rowF("pNN50 (%)", refRep.PNN50*100, gotRep.PNN50*100)
	rowF("PVC burden (/h)", refRep.VentricularPerHour, gotRep.VentricularPerHour)
	rowF("pauses > 2 s", float64(len(refRep.Pauses)), float64(len(gotRep.Pauses)))

	if refSp, err := csecg.AnalyzeSpectralHRV(origBeats); err == nil {
		if gotSp, err := csecg.AnalyzeSpectralHRV(reconBeats); err == nil {
			rowF("LF/HF ratio", refSp.LFHFRatio, gotSp.LFHFRatio)
			rowF("HRV peak (mHz)", refSp.PeakHz*1000, gotSp.PeakHz*1000)
		}
	}

	_, refAF, err := csecg.DetectAF(origBeats)
	if err != nil {
		fail(err)
	}
	gotEps, gotAF, err := csecg.DetectAF(reconBeats)
	if err != nil {
		fail(err)
	}
	rowF("AF time (%)", refAF*100, gotAF*100)
	if gotAF > 0.5 {
		fmt.Printf("\nRHYTHM: atrial fibrillation (%d episodes on the reconstruction)\n", len(gotEps))
	} else if gotRep.VentricularPerHour > 300 {
		fmt.Printf("\nRHYTHM: frequent ventricular ectopy\n")
	} else {
		fmt.Printf("\nRHYTHM: predominantly sinus\n")
	}
	fmt.Printf("report-level deviation: %.1f%%\n", csecg.CompareHolterReports(refRep, gotRep)*100)

	if reg != nil {
		writeOut(*metricsFile, func(f *os.File) error { return csecg.WriteMetrics(f, reg) })
	}
	if tr != nil && *traceFile != "" {
		writeOut(*traceFile, func(f *os.File) error { return csecg.WriteChromeTrace(f, tr) })
	}
	if tr != nil && *eventsFile != "" {
		writeOut(*eventsFile, func(f *os.File) error { return csecg.WriteTraceJSONL(f, tr) })
	}
}

// writeOut streams one telemetry export to the named file ("-" → stdout).
func writeOut(path string, write func(f *os.File) error) {
	f := os.Stdout
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			fail(err)
		}
		defer f.Close() //csecg:errok output file, write errors surface below
	}
	if err := write(f); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "csecg-holter: %v\n", err)
	os.Exit(1)
}
