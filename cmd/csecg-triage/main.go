// Command csecg-triage ingests causal span traces (the JSONL written
// by csecg-bench -spans or csecg-monitor -spans-out) or a sealed
// diagnostics bundle and emits a critical-path latency report:
// per-stage p50/p95/p99 contribution to window decode latency,
// dominant-stage ranking per degradation rung, and a one-line verdict
// such as "p99 dominated by solver stage fista/2 under rung 1".
//
// Every trace is held to the tiling contract — its depth-1 span
// durations must sum to the recorded end-to-end latency within the
// tolerance — so the attribution can be trusted, or the tool says it
// can't.
//
// Usage:
//
//	csecg-triage traces.jsonl
//	csecg-triage -json -max-divergence 0.02 traces.jsonl
//	csecg-triage bundle.csecg.jsonl      # decode-side report
//	csecg-bench -exp chaos -short -spans - | csecg-triage -
//
// Exit status: 0 clean attribution, 1 tiling divergence (attribution
// suspect), 2 usage or input errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"csecg/internal/blackbox"
	"csecg/internal/telemetry"
	"csecg/internal/triage"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit the report as JSON instead of text")
		maxDiv  = flag.Float64("max-divergence", triage.DefaultMaxDivergence,
			"allowed relative gap between a trace's span sum and its end-to-end latency")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: csecg-triage [flags] <traces.jsonl | bundle.jsonl | ->\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	path := flag.Arg(0)
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		fail(err)
	}

	rep, err := analyze(data, triage.Options{MaxDivergence: *maxDiv})
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
	} else {
		fmt.Print(rep.Render())
	}
	if !rep.Clean {
		os.Exit(1)
	}
}

// analyze sniffs the input format: a diagnostics bundle opens with a
// {"type":"header",...} line; anything else is trace JSONL.
func analyze(data []byte, opts triage.Options) (*triage.Report, error) {
	first := firstLine(data)
	var disc struct {
		Type string `json:"type"`
	}
	if len(first) > 0 && json.Unmarshal(first, &disc) == nil && disc.Type == "header" {
		b, err := blackbox.ParseBundle(data)
		if err != nil {
			return nil, fmt.Errorf("parsing bundle: %w", err)
		}
		return triage.AnalyzeBundle(b), nil
	}
	traces, err := telemetry.ReadTraceRecords(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("parsing traces: %w", err)
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("input holds no trace records")
	}
	return triage.Analyze(traces, opts), nil
}

// firstLine returns the first non-empty line of the input.
func firstLine(data []byte) []byte {
	for len(data) > 0 {
		i := bytes.IndexByte(data, '\n')
		var line []byte
		if i < 0 {
			line, data = data, nil
		} else {
			line, data = data[:i], data[i+1:]
		}
		if line = bytes.TrimSpace(line); len(line) > 0 {
			return line
		}
	}
	return nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "csecg-triage: %v\n", err)
	os.Exit(2)
}
