// Command csecg-export writes substitute-database records to disk in
// the MIT-BIH physical format (format-212 .dat, .hea header, .atr
// ground-truth beat annotations), so the synthetic data can be examined
// with standard WFDB tooling or swapped for the real database.
//
// Usage:
//
//	csecg-export -records 100,208 -seconds 60 -dir ./out
//	csecg-export -all -seconds 1800 -dir ./mitdb-substitute   # full records
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"csecg/internal/ecg"
	"csecg/internal/wfdb"
)

func main() {
	var (
		records = flag.String("records", "100", "comma-separated record IDs")
		all     = flag.Bool("all", false, "export all 48 records")
		seconds = flag.Float64("seconds", 60, "seconds per record (1800 = full half hour)")
		dir     = flag.String("dir", ".", "output directory")
	)
	flag.Parse()

	var ids []string
	if *all {
		for _, r := range ecg.Database() {
			ids = append(ids, r.ID)
		}
	} else {
		ids = strings.Split(*records, ",")
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fail(err)
	}
	spec := wfdb.SignalSpec{
		Gain: ecg.ADCGain, Baseline: ecg.ADCBaseline, Units: "mV",
		ADCRes: ecg.ADCBits, ADCZero: ecg.ADCBaseline,
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		rec, err := ecg.RecordByID(id)
		if err != nil {
			fail(err)
		}
		sig, err := rec.Synthesize(*seconds)
		if err != nil {
			fail(err)
		}
		ch0 := ecg.Digitize(sig.MV[0])
		ch1 := ecg.Digitize(sig.MV[1])
		if err := wfdb.WriteRecord(*dir, id, ecg.FsMITBIH, ch0, ch1, spec, [2]string{"MLII", "V1"}); err != nil {
			fail(fmt.Errorf("record %s: %w", id, err))
		}
		if err := wfdb.WriteAnnotations(*dir, id, wfdb.AnnotationsFromSignal(sig)); err != nil {
			fail(fmt.Errorf("record %s annotations: %w", id, err))
		}
		fmt.Printf("wrote %s: %d samples/channel, %d beats (%s)\n",
			id, len(ch0), len(sig.Ann), rec.Description)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "csecg-export: %v\n", err)
	os.Exit(1)
}
