package csecg

import (
	"csecg/internal/adaptive"
	"csecg/internal/analogcs"
	"csecg/internal/core"
	"csecg/internal/dwtcomp"
	"csecg/internal/holter"
	"csecg/internal/qrs"
	"csecg/internal/session"
	"csecg/internal/wfdb"
)

// This file exposes the extension subsystems built on top of the
// paper's pipeline: clinical validation, adaptive rate control, the
// analog-CS front-end simulation, the classical transform-coding
// baseline, and MIT-BIH physical-format I/O.

// Sparsifying bases selectable in Params.Basis.
const (
	// BasisWavelet is the paper's orthonormal Daubechies wavelet.
	BasisWavelet = core.BasisWavelet
	// BasisDCT is an orthonormal cosine basis (ablation alternative).
	BasisDCT = core.BasisDCT
)

// QRS detection and beat classification (clinical validation).
type (
	// QRSDetector is a Pan-Tompkins-style beat detector.
	QRSDetector = qrs.Detector
	// BeatMatchStats scores detections against reference beats.
	BeatMatchStats = qrs.MatchStats
	// Beat is one detected beat with morphology measurements.
	Beat = qrs.Beat
	// BeatClassStats scores PVC-vs-normal classification.
	BeatClassStats = qrs.ClassificationStats
)

// ScoreBeatClassification tallies classification against labeled
// references.
func ScoreBeatClassification(beats []Beat, refSamples []int, refVentricular []bool, tol int) BeatClassStats {
	return qrs.ScoreClassification(beats, refSamples, refVentricular, tol)
}

// NewQRSDetector builds a detector for the given sample rate.
func NewQRSDetector(fs float64) (*QRSDetector, error) { return qrs.NewDetector(fs) }

// MatchBeats pairs detections with reference beat locations within tol
// samples (both ascending).
func MatchBeats(detections, reference []int, tol int) BeatMatchStats {
	return qrs.Match(detections, reference, tol)
}

// Adaptive rate control.
type (
	// AdaptiveLevel is one operating point of the rate ladder.
	AdaptiveLevel = adaptive.Level
	// AdaptiveEncoder switches compression ratio with signal activity.
	AdaptiveEncoder = adaptive.Encoder
	// AdaptiveDecoder32 is the float32 adaptive decoder.
	AdaptiveDecoder32 = adaptive.Decoder[float32]
	// AdaptiveFrame is the level-tagged wire unit.
	AdaptiveFrame = adaptive.Frame
)

// NewAdaptiveEncoder builds an adaptive encoder over the level ladder
// (nil selects adaptive.DefaultLevels).
func NewAdaptiveEncoder(base Params, levels []AdaptiveLevel) (*AdaptiveEncoder, error) {
	return adaptive.NewEncoder(base, levels)
}

// NewAdaptiveDecoder32 mirrors NewAdaptiveEncoder on the decode side.
func NewAdaptiveDecoder32(base Params, levels []AdaptiveLevel) (*AdaptiveDecoder32, error) {
	return adaptive.NewDecoder[float32](base, levels)
}

// DefaultAdaptiveLevels returns the stock three-point ladder.
func DefaultAdaptiveLevels() []AdaptiveLevel { return adaptive.DefaultLevels() }

// Holter-report analytics.
type (
	// HolterBeat is the per-beat input of the analytics.
	HolterBeat = holter.BeatInput
	// HolterReport is the computed summary (HR, HRV, burden, pauses).
	HolterReport = holter.Report
	// AFEpisode is one detected atrial-fibrillation episode.
	AFEpisode = holter.AFEpisode
	// SpectralHRV holds LF/HF band powers of the RR series.
	SpectralHRV = holter.SpectralHRV
)

// AnalyzeHolter computes the report from a time-ordered beat sequence.
func AnalyzeHolter(beats []HolterBeat) (*HolterReport, error) { return holter.Analyze(beats) }

// CompareHolterReports returns the worst relative error over the
// headline numbers of two reports.
func CompareHolterReports(ref, got *HolterReport) float64 {
	return holter.CompareReports(ref, got)
}

// DetectAF finds fibrillation episodes from RR statistics and returns
// them with the fraction of time in AF.
func DetectAF(beats []HolterBeat) ([]AFEpisode, float64, error) { return holter.DetectAF(beats) }

// AnalyzeSpectralHRV computes LF/HF band powers via the Lomb-Scargle
// periodogram of the normal-to-normal interval series.
func AnalyzeSpectralHRV(beats []HolterBeat) (*SpectralHRV, error) {
	return holter.AnalyzeSpectral(beats)
}

// Multi-lead sessions.
type (
	// SessionEncoder multiplexes several leads over one link.
	SessionEncoder = session.Encoder
	// SessionDecoder32 is the float32 multi-lead decoder.
	SessionDecoder32 = session.Decoder[float32]
	// SessionFrame is the lead-tagged wire unit.
	SessionFrame = session.Frame
)

// NewSessionEncoder builds one pipeline per lead (lead-specific sensing
// matrices derived from the base seed).
func NewSessionEncoder(base Params, leads int) (*SessionEncoder, error) {
	return session.NewEncoder(base, leads)
}

// NewSessionDecoder32 mirrors NewSessionEncoder.
func NewSessionDecoder32(base Params, leads int) (*SessionDecoder32, error) {
	return session.NewDecoder[float32](base, leads)
}

// Analog CS front-end simulation (the paper's "ultimate goal").
type (
	// AnalogFrontEnd is a random-modulation pre-integrator model.
	AnalogFrontEnd = analogcs.FrontEnd
	// AnalogConfig parameterizes it.
	AnalogConfig = analogcs.Config
)

// NewAnalogFrontEnd builds the front end.
func NewAnalogFrontEnd(cfg AnalogConfig) (*AnalogFrontEnd, error) { return analogcs.New(cfg) }

// Classical transform-coding baseline.
type (
	// DWTEncoder is the fixed-point wavelet-thresholding compressor.
	DWTEncoder = dwtcomp.Encoder
	// DWTDecoder reconstructs its packets.
	DWTDecoder = dwtcomp.Decoder
)

// NewDWTEncoder builds the baseline compressor.
func NewDWTEncoder(n, order, levels, keepK int) (*DWTEncoder, error) {
	return dwtcomp.NewEncoder(n, order, levels, keepK)
}

// NewDWTDecoder mirrors NewDWTEncoder.
func NewDWTDecoder(n, order, levels int) (*DWTDecoder, error) {
	return dwtcomp.NewDecoder(n, order, levels)
}

// MIT-BIH physical-format I/O.
type (
	// WFDBHeader is a parsed .hea file.
	WFDBHeader = wfdb.Header
	// WFDBSignalSpec is one per-signal header line.
	WFDBSignalSpec = wfdb.SignalSpec
	// WFDBRecord is a fully read two-channel record.
	WFDBRecord = wfdb.Record
	// WFDBAnnotation is one annotated beat.
	WFDBAnnotation = wfdb.Annotation
)

// WriteWFDBRecord exports a two-channel record in format 212.
func WriteWFDBRecord(dir, name string, fs float64, ch0, ch1 []int16, spec WFDBSignalSpec, descriptions [2]string) error {
	return wfdb.WriteRecord(dir, name, fs, ch0, ch1, spec, descriptions)
}

// ReadWFDBRecord reads a format-212 record with checksum verification.
func ReadWFDBRecord(dir, name string) (*WFDBRecord, error) { return wfdb.ReadRecord(dir, name) }

// WriteWFDBAnnotations exports beat annotations in the MIT format.
func WriteWFDBAnnotations(dir, name string, anns []WFDBAnnotation) error {
	return wfdb.WriteAnnotations(dir, name, anns)
}

// ReadWFDBAnnotations reads MIT-format annotations.
func ReadWFDBAnnotations(dir, name string) ([]WFDBAnnotation, error) {
	return wfdb.ReadAnnotations(dir, name)
}
