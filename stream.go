package csecg

import (
	"fmt"
	"time"

	"csecg/internal/blackbox"
	"csecg/internal/coordinator"
	"csecg/internal/core"
	"csecg/internal/energy"
	"csecg/internal/link"
	"csecg/internal/metrics"
	"csecg/internal/monitor"
	"csecg/internal/mote"
	"csecg/internal/telemetry"
)

// StreamConfig describes an end-to-end monitoring session: one record
// channel streamed through the instrumented mote, the Bluetooth link and
// the real-time coordinator.
type StreamConfig struct {
	// RecordID selects the substitute-database record (default "100").
	RecordID string
	// Channel selects the lead (0 or 1).
	Channel int
	// Seconds of signal to stream (default 60).
	Seconds float64
	// Params configures the pipeline.
	Params Params
	// Mode selects the coordinator build (default ModeNEON).
	Mode coordinator.Mode
	// Link configures the data downlink (zero value → DefaultLinkConfig).
	Link LinkConfig
	// Transport configures the coordinator's fault-tolerant receive
	// path. The zero value reproduces the paper's baseline: losses are
	// ridden out until the next scheduled key frame. Setting
	// Transport.NACK enables the control channel and the mote's bounded
	// retransmit ring.
	Transport TransportConfig
	// ControlLink configures the uplink carrying NACK/key-request
	// control packets (nil → the data-link config with a derived fault
	// seed, so control traffic sees the same channel quality).
	ControlLink *LinkConfig
	// RetransmitRing overrides the mote's retransmit ring size when the
	// NACK protocol is enabled (0 → mote.DefaultRetransmitRing; must
	// fit the MSP430's 10 kB RAM).
	RetransmitRing int
	// Metrics, when non-nil, attaches every pipeline component to the
	// registry: mote/link/transport/coordinator counters and histograms
	// plus the stream-level stage-duration and decode-latency series.
	// When nil, a private registry is kept so the report's distribution
	// summaries are populated either way.
	Metrics *telemetry.Registry
	// Trace, when non-nil, records the window-lifecycle spans of every
	// window on the session's modeled timeline — sample → cs-sample →
	// diff → huffman → tx → rx → reassemble → fista → reconstruct, plus
	// loss/NACK/retransmit events and the solver's per-iteration
	// counter tracks.
	Trace *telemetry.Tracer
	// TraceLabel names the session's trace tracks (default the record).
	TraceLabel string
	// Spans, when non-nil, captures every window's hierarchical causal
	// span tree on the modeled timeline: trace-ID-stamped spans from
	// acquisition end through encode, transmit, per-retransmit attempts,
	// link transit, reorder/queue wait, the solver rung (with
	// continuation sub-stages) and reconstruction — depth-1 leaves tile
	// the end-to-end decode latency exactly. The tracer tail-samples
	// anomalous windows, feeds the csecg_window_stage_seconds exemplar
	// histograms, and seeds the receiver/flight recorder with the same
	// trace IDs (DESIGN.md §14).
	Spans *telemetry.CausalTracer
	// Clock times the host-side solve for the wall-time histogram
	// (nil → telemetry.WallClock; inject a ManualClock in tests).
	Clock telemetry.Clock
	// Observer, when non-nil, receives live per-window quality/latency
	// status and per-slot transport health on the modeled timeline —
	// the feed behind the monitor plane's /readyz and /sessions.
	Observer monitor.Observer
	// Recorder, when non-nil, is attached to the receive path as the
	// session's black-box flight recorder: it rings recent frames and
	// decode summaries and seals diagnostics bundles on anomaly
	// triggers. RunStream fills in the session metadata a bundle needs
	// for deterministic replay and points the recorder at the session
	// registry.
	Recorder *blackbox.Recorder
}

// StreamReport aggregates a session.
type StreamReport struct {
	// Windows encoded by the mote; Lost counts frames the downlink
	// destroyed (dropped plus checksum-rejected corruption), including
	// lost retransmission attempts; Decoded counts the windows actually
	// reconstructed — under loss this is smaller than Windows−Lost
	// whenever desynchronized deltas had to be discarded too.
	Windows, Lost, Decoded int
	// MeanPRDN and WorstPRDN summarize reconstruction quality over the
	// successfully decoded windows (excluding the cold-start window).
	MeanPRDN, WorstPRDN float64
	// MeanEstPRDN and BadWindows summarize the ground-truth-free
	// quality estimate over every decoded window: what a deployed
	// coordinator — which never sees the original signal — would
	// report. BadWindows counts estimates past the paper's 9 % "good"
	// boundary.
	MeanEstPRDN float64
	BadWindows  int
	// WireCR is the overall compression ratio of Eq. (7) including
	// packet framing, against 12-bit raw streaming.
	WireCR float64
	// MoteCPU and CoordinatorCPU are mean modeled CPU shares.
	MoteCPU, CoordinatorCPU float64
	// MeanIterations and MeanDecodeTime characterize the recovery cost.
	MeanIterations float64
	// MeanDecodeTime is the modeled on-device decode time per packet.
	MeanDecodeTime time.Duration
	// AirtimePerWindow is the radio-on time per 2-second window,
	// including retransmission airtime.
	AirtimePerWindow time.Duration
	// RetransmitAirtime is the share of downlink airtime spent on
	// NACK-driven retransmissions; Retransmits counts the ring hits the
	// mote served.
	RetransmitAirtime time.Duration
	Retransmits       int64
	// LifetimeRaw and LifetimeCS are modeled node lifetimes streaming
	// uncompressed versus CS-compressed; Extension is their ratio − 1.
	LifetimeRaw, LifetimeCS time.Duration
	// Extension is the relative lifetime gain (the paper: 12.9% at CR 50).
	Extension float64
	// Display is the viewer simulation over the session's decode times.
	Display *coordinator.DisplayReport
	// CRCRejected counts wire frames the receiver's ingest integrity
	// check refused — channel corruption stopped before the decoder.
	CRCRejected int
	// DegradedWindows counts decodes flagged reduced-quality by the
	// coordinator's degradation ladder or the solver's soft deadline.
	DegradedWindows int
	// Shed counts windows dropped by the receiver's bounded admission
	// queue under overload (oldest non-key first).
	Shed int
	// Transport reports the receiver's gap/resync accounting: gap
	// episodes, longest outage, recovery latency distribution, control
	// traffic.
	Transport TransportStats
	// LinkStats and ControlStats snapshot the fault counters of the
	// data downlink and the control uplink.
	LinkStats, ControlStats link.Stats
	// Stages summarizes the modeled per-stage durations in nanoseconds
	// across the session, keyed by the telemetry stage names (sample,
	// cs-sample, diff, huffman, tx, rx, reassemble, fista, reconstruct).
	Stages map[string]telemetry.Summary
	// DecodeLatency is the per-window recovery latency distribution in
	// nanoseconds: end of the window's acquisition to reconstruction
	// available, including reorder/retransmit slot delays — the
	// per-window accounting behind the session-mean MeanDecodeTime.
	DecodeLatency telemetry.Summary
	// SolverIterations is the per-window FISTA iteration distribution.
	SolverIterations telemetry.Summary
	// BundlesWritten counts the diagnostics bundles the session's
	// flight recorder sealed (0 when no Recorder was configured).
	BundlesWritten int
}

// Trace thread (track) IDs within a session's three processes.
const (
	tidAcquire = 1 // mote: ADC acquisition
	tidEncode  = 2 // mote: CS measurement, diff, entropy stages
	tidAir     = 1 // link: radio airtime and channel events
	tidRX      = 1 // coordinator: frame arrival and control traffic
	tidBuffer  = 2 // coordinator: reorder-buffer hold
	tidDecode  = 3 // coordinator: FISTA solve and reconstruction
)

// traceIterations emits a downsampled counter track of the solver's
// per-iteration telemetry, spread evenly across the window's fista span.
func traceIterations(tr *telemetry.Tracer, pid int64, d coordinator.Decoded, start, dur int64) {
	samples := d.Res.IterTrace
	if len(samples) == 0 {
		return
	}
	const maxPoints = 64
	stride := (len(samples) + maxPoints - 1) / maxPoints
	for i := 0; i < len(samples); i += stride {
		s := samples[i]
		ts := start + int64(float64(dur)*float64(i)/float64(len(samples)))
		tr.Counter(pid, "fista objective", ts, telemetry.F("objective", s.Objective))
		tr.Counter(pid, "fista residual", ts, telemetry.F("residual", s.Residual))
		tr.Counter(pid, "fista step", ts, telemetry.F("step", s.Step))
	}
}

// RunStream executes the full pipeline and returns the session report.
func RunStream(cfg StreamConfig) (*StreamReport, error) {
	if cfg.RecordID == "" {
		cfg.RecordID = "100"
	}
	if cfg.Seconds == 0 {
		cfg.Seconds = 60
	}
	if cfg.Link.EffectiveBitrate == 0 {
		cfg.Link = DefaultLinkConfig()
	}
	rec, err := RecordByID(cfg.RecordID)
	if err != nil {
		return nil, err
	}
	samples, err := rec.Channel256(cfg.Seconds, cfg.Channel)
	if err != nil {
		return nil, err
	}
	m, err := mote.New(cfg.Params)
	if err != nil {
		return nil, err
	}
	dec, err := coordinator.NewRealTimeDecoder(cfg.Params, cfg.Mode)
	if err != nil {
		return nil, err
	}
	lnk, err := link.New(cfg.Link)
	if err != nil {
		return nil, err
	}
	var ctrl *link.Link
	if cfg.Transport.NACK {
		ring := cfg.RetransmitRing
		if ring == 0 {
			ring = mote.DefaultRetransmitRing
		}
		if err := m.EnableRetransmitBuffer(ring); err != nil {
			return nil, err
		}
		ctrlCfg := cfg.Link
		// Decorrelate the uplink's fault stream from the downlink's.
		ctrlCfg.Seed = cfg.Link.Seed ^ 0x9E3779B97F4A7C15
		if cfg.ControlLink != nil {
			ctrlCfg = *cfg.ControlLink
		}
		if ctrl, err = link.New(ctrlCfg); err != nil {
			return nil, err
		}
	}
	rx := coordinator.NewReceiver(dec, cfg.Transport)

	spans := cfg.Spans
	if spans != nil {
		// One seed derives every window's trace ID identically across the
		// span tracer, the receiver's flight-recorder captures and the
		// monitor's /sessions links.
		rx.SetTraceSeed(spans.Seed())
		rx.SetShedHook(func(seq uint32) {
			if wt := spans.Lookup(seq); wt != nil {
				spans.FinishDropped(wt, telemetry.FlagShed)
			}
		})
	}

	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if cfg.Recorder != nil {
		// Resolved params and mode, not the user's input: replay must
		// rebuild exactly this decoder without re-deriving defaults.
		meta := blackbox.NewSessionMeta("", dec.Params(), dec.Mode(), cfg.Transport)
		if spans != nil {
			meta.TraceSeed = spans.Seed()
		}
		cfg.Recorder.SetMeta(meta)
		cfg.Recorder.AttachRegistry(reg)
		rx.SetRecorder(cfg.Recorder)
	}
	m.Instrument(reg)
	lnk.Instrument(reg, "link")
	if ctrl != nil {
		ctrl.Instrument(reg, "ctrl")
	}
	rx.Instrument(reg)
	dec.Instrument(reg, cfg.Clock)
	tr := cfg.Trace
	var ses telemetry.Session
	if tr != nil {
		dec.EnableIterationTrace()
		label := cfg.TraceLabel
		if label == "" {
			label = "record " + cfg.RecordID
		}
		ses = tr.NewSession(label)
		tr.ThreadName(ses.Mote, tidAcquire, "acquire")
		tr.ThreadName(ses.Mote, tidEncode, "encode")
		tr.ThreadName(ses.Link, tidAir, "air")
		tr.ThreadName(ses.Coordinator, tidRX, "rx")
		tr.ThreadName(ses.Coordinator, tidBuffer, "reorder-buffer")
		tr.ThreadName(ses.Coordinator, tidDecode, "decode")
	}
	stageHist := make(map[string]*telemetry.Histogram, len(telemetry.Stages()))
	for _, s := range telemetry.Stages() {
		stageHist[s] = reg.Histogram("stream_stage_" + s + "_ns")
	}
	latHist := reg.Histogram("stream_decode_latency_ns")

	rep := &StreamReport{}
	var rawBits, compBits int
	var sumPRDN float64
	var prCount int
	var sumEst float64
	var estCount int
	var sumIters int64
	var decodeTimes []float64
	var sumDecode time.Duration
	n := cfg.Params.N
	if n == 0 {
		n = WindowSize
	}

	// Modeled session timeline, in nanoseconds: window w's acquisition
	// fills [w·T, (w+1)·T); encode and transmit of window w run while
	// window w+1 is being acquired (double-buffered ADC). nowNs tracks
	// the mote/link side; the coordinator's single decode core is
	// serialized through decodeFreeAt.
	windowNs := int64(float64(n) / FsMote * float64(time.Second))
	cyclesToNs := func(c int64) int64 { return c * int64(time.Second) / mote.ClockHz }
	reconstructNs := int64(coordinator.DefaultCosts().IterationTime(dec.Params(), cfg.Mode))
	var nowNs, decodeFreeAt int64
	var lostSoFar int64
	rxAt := map[uint32]int64{}      // per-seq arrival time of the delivered frame
	retxAttempt := map[uint32]int{} // per-seq NACK retransmission attempts served
	lastRung := coordinator.RungNominal
	lastCRC := 0

	// noteLoss emits a loss instant when the last transmit was destroyed.
	noteLoss := func(seq int64) {
		st := lnk.Stats()
		if lost := st.Dropped + st.Corrupted; lost > lostSoFar {
			if tr != nil {
				tr.Instant(ses.Link, tidAir, telemetry.EventLoss, telemetry.CatWindow, nowNs,
					telemetry.I("seq", seq))
			}
			lostSoFar = lost
		}
	}

	// Windows indexed by sequence number, for scoring late releases.
	var wins [][]int16
	score := func(out []coordinator.Decoded) {
		for _, d := range out {
			sumIters += int64(d.Res.Iterations)
			sumDecode += d.Res.ModeledTime
			decodeTimes = append(decodeTimes, d.Res.ModeledTime.Seconds())

			// Window lifecycle on the coordinator: the frame arrived at
			// rxAt, waited in the reorder buffer until released (now, or
			// until the decode core freed up), then solved and
			// reconstructed.
			arrive := rxAt[d.Seq]
			start := nowNs
			if arrive > start {
				start = arrive
			}
			if decodeFreeAt > start {
				start = decodeFreeAt
			}
			fistaNs := int64(d.Res.ModeledTime)
			decodeFreeAt = start + fistaNs + reconstructNs
			stageHist[telemetry.StageReassemble].Observe(start - arrive)
			stageHist[telemetry.StageFISTA].Observe(fistaNs)
			stageHist[telemetry.StageReconstruct].Observe(reconstructNs)
			// Per-window recovery latency: acquisition end → samples ready.
			latency := decodeFreeAt - (int64(d.Seq)+1)*windowNs
			latHist.Observe(latency)
			if spans != nil {
				if wt := spans.Lookup(d.Seq); wt != nil {
					// Close the causal tree: the depth-1 leaves must tile
					// [acquisition end, decodeFreeAt) exactly, so the gap
					// between the transmit frontier and the frame's arrival
					// becomes an explicit link-transit span.
					if f := wt.FrontierNs(); arrive > f {
						wt.Leaf(telemetry.StageLinkTransit, f, arrive-f)
					}
					wt.Leaf(telemetry.StageReassemble, arrive, start-arrive)
					si := wt.SolverLeaf(d.Res.Rung.SolverStage(), start, fistaNs, int(d.Res.Rung))
					if iters := d.Res.StageIters; len(iters) > 1 && d.Res.Iterations > 0 && si >= 0 {
						// Continuation sub-stages split the solve span
						// proportionally to per-stage iteration counts; the
						// last absorbs the rounding remainder.
						off := start
						rem := fistaNs
						for i, it := range iters {
							durS := rem
							if i < len(iters)-1 {
								durS = int64(float64(fistaNs) * float64(it) / float64(d.Res.Iterations))
								if durS > rem {
									durS = rem
								}
							}
							wt.Child(si, telemetry.ContStageName(i), off, durS)
							if tr != nil {
								tr.BeginSpan(ses.Coordinator, tidDecode, telemetry.ContStageName(i), telemetry.CatWindow, off)
								tr.EndSpan(ses.Coordinator, tidDecode, telemetry.ContStageName(i), telemetry.CatWindow, off+durS)
							}
							off += durS
							rem -= durS
						}
					}
					wt.Leaf(telemetry.StageReconstruct, start+fistaNs, reconstructNs)
					if d.Res.Rung != lastRung {
						wt.MarkRungChange(start, int(d.Res.Rung))
					}
					var flags uint32
					if d.Bad {
						flags |= telemetry.FlagBad
					}
					if d.Res.Degraded {
						flags |= telemetry.FlagDegraded
					}
					if d.Res.DeadlineExpired {
						flags |= telemetry.FlagDeadline
					}
					// Frame-level CRC rejects carry no trustworthy sequence
					// number, so integrity trouble is attributed to the
					// window finishing when the reject counter moved.
					if rej := rx.Stats().Rejected; rej > lastCRC {
						flags |= telemetry.FlagCRC
						lastCRC = rej
					}
					wt.Mark(flags)
					spans.Finish(wt, int(d.Res.Rung), latency)
				}
			}
			lastRung = d.Res.Rung
			sumEst += d.EstPRDN
			estCount++
			if d.Bad {
				rep.BadWindows++
			}
			if d.Res.Degraded {
				rep.DegradedWindows++
			}
			if cfg.Observer != nil {
				var tid uint64
				if spans != nil {
					tid = spans.TraceID(d.Seq)
				}
				cfg.Observer.OnWindow(monitor.WindowStatus{
					Seq:        d.Seq,
					EstPRDN:    d.EstPRDN,
					Bad:        d.Bad,
					Residual:   d.Res.ResidualNorm,
					Iterations: d.Res.Iterations,
					Converged:  d.Res.Converged,
					Degraded:   d.Res.Degraded,
					Rung:       d.Res.Rung,
					LatencyNs:  latency,
					TimelineNs: decodeFreeAt,
					TraceID:    tid,
				})
			}
			if tr != nil {
				seqArg := telemetry.I("seq", int64(d.Seq))
				tr.Span(ses.Coordinator, tidBuffer, telemetry.StageReassemble, telemetry.CatWindow,
					arrive, start-arrive, seqArg)
				tr.Span(ses.Coordinator, tidDecode, telemetry.StageFISTA, telemetry.CatWindow,
					start, fistaNs, seqArg, telemetry.I("iterations", int64(d.Res.Iterations)))
				tr.Span(ses.Coordinator, tidDecode, telemetry.StageReconstruct, telemetry.CatWindow,
					start+fistaNs, reconstructNs, seqArg)
				if spans != nil {
					// Terminate the window's flow arrow on the decode slice.
					tr.FlowEnd(ses.Coordinator, tidDecode, telemetry.FlowWindow, telemetry.CatWindow,
						start, int64(spans.TraceID(d.Seq)))
				}
				traceIterations(tr, ses.Coordinator, d, start, fistaNs)
			}

			if d.Seq == 0 || int(d.Seq) >= len(wins) {
				continue // cold start is excluded from the quality stats
			}
			win := wins[d.Seq]
			orig := make([]float64, n)
			reco := make([]float64, n)
			for i := range win {
				orig[i] = float64(win[i])
				reco[i] = float64(d.Res.Samples[i])
			}
			prdn, err := metrics.PRDN(orig, reco)
			if err == nil {
				sumPRDN += prdn
				prCount++
				if prdn > rep.WorstPRDN {
					rep.WorstPRDN = prdn
				}
			}
		}
	}
	// deliver runs every wire frame the channel produced through the
	// receiver's integrity check and reassembly; a CRC-rejected frame is
	// counted and dropped like a channel loss. rxEnd/durNs place the
	// arrival on the modeled timeline.
	deliver := func(frames [][]byte, rxEnd, durNs int64) error {
		for _, f := range frames {
			p, err := rx.ParseFrame(f)
			if err != nil {
				continue // corrupt on the wire: rejected at ingest
			}
			rxAt[p.Seq] = rxEnd
			stageHist[telemetry.StageRX].Observe(durNs)
			if tr != nil {
				tr.Span(ses.Coordinator, tidRX, telemetry.StageRX, telemetry.CatWindow,
					rxEnd-durNs, durNs, telemetry.I("seq", int64(p.Seq)))
				if spans != nil {
					tr.FlowStep(ses.Coordinator, tidRX, telemetry.FlowWindow, telemetry.CatWindow,
						rxEnd-durNs, int64(spans.TraceID(p.Seq)))
				}
			}
			out, err := rx.Push(p)
			if err != nil {
				return err
			}
			score(out)
		}
		return nil
	}
	// transmit marshals one packet onto the downlink, returning the
	// delivered wire frames and the modeled airtime.
	transmit := func(p *core.Packet) ([][]byte, int64, error) {
		blob, err := p.Marshal()
		if err != nil {
			return nil, 0, err
		}
		frames, at := lnk.TransmitMulti(blob)
		return frames, int64(at), nil
	}
	// serveControl carries one control packet over the uplink and, when
	// it survives, has the mote act on it. Retransmitted frames cross
	// the same lossy downlink as everything else.
	serveControl := func(c *core.Packet) error {
		up, ctrlAt, err := ctrl.TransmitPacket(c)
		nowNs += int64(ctrlAt)
		if err != nil || up == nil {
			return err
		}
		switch up.Kind {
		case core.KindNack:
			first, count, err := core.NackRange(up)
			if err != nil {
				return err
			}
			for i := 0; i < count; i++ {
				pkt, ok := m.Retransmit(first + uint32(i))
				if !ok {
					continue // aged out of the ring
				}
				if tr != nil {
					tr.Instant(ses.Link, tidAir, telemetry.EventRetransmit, telemetry.CatWindow,
						nowNs, telemetry.I("seq", int64(pkt.Seq)))
				}
				before := lnk.Stats().Airtime
				frames, txNs, err := transmit(pkt)
				if err != nil {
					return err
				}
				rep.RetransmitAirtime += lnk.Stats().Airtime - before
				stageHist[telemetry.StageTX].Observe(txNs)
				if tr != nil {
					tr.Span(ses.Link, tidAir, telemetry.StageTX, telemetry.CatWindow, nowNs, txNs,
						telemetry.I("seq", int64(pkt.Seq)), telemetry.I("retransmit", 1))
				}
				if spans != nil {
					if wt := spans.Lookup(pkt.Seq); wt != nil {
						// The gap since the window's last span is the time
						// spent waiting for loss detection and the NACK
						// round trip; the attempt itself is its own leaf.
						att := retxAttempt[pkt.Seq] + 1
						retxAttempt[pkt.Seq] = att
						if f := wt.FrontierNs(); nowNs > f {
							wt.Leaf(telemetry.StageRetransmitWait, f, nowNs-f)
						}
						wt.AttemptLeaf(telemetry.StageRetransmit, nowNs, txNs, att)
						wt.Mark(telemetry.FlagRetransmit)
					}
				}
				nowNs += txNs
				noteLoss(int64(pkt.Seq))
				if err := deliver(frames, nowNs, txNs); err != nil {
					return err
				}
			}
		case core.KindKeyRequest:
			m.RequestKeyFrame()
		}
		return nil
	}

	for o := 0; o+n <= len(samples); o += n {
		w := int64(rep.Windows)
		win := samples[o : o+n]
		mr, err := m.EncodeWindow(win)
		if err != nil {
			return nil, fmt.Errorf("csecg: encoding window %d: %w", rep.Windows, err)
		}
		rep.Windows++
		wins = append(wins, win)
		rawBits += n * 12
		compBits += mr.Packet.WireSize() * 8

		if encStart := (w + 1) * windowNs; encStart > nowNs {
			nowNs = encStart
		}
		csNs := cyclesToNs(mr.MeasureCycles + mr.ShiftCycles)
		diffNs := cyclesToNs(mr.DiffCycles)
		huffNs := cyclesToNs(mr.EntropyCycles + mr.FramingCycles)
		var wt *telemetry.WindowTrace
		if spans != nil {
			// The causal tree is rooted at acquisition end — the moment
			// the window's samples exist and the latency clock starts. If
			// the mote was still transmitting the previous window, that
			// backlog shows up as an explicit encode-wait leaf.
			acqEnd := (w + 1) * windowNs
			wt = spans.Begin(uint32(w))
			wt.Root(acqEnd)
			if nowNs > acqEnd {
				wt.Leaf(telemetry.StageEncodeWait, acqEnd, nowNs-acqEnd)
			}
			wt.Leaf(telemetry.StageCSSample, nowNs, csNs)
			wt.Leaf(telemetry.StageDiff, nowNs+csNs, diffNs)
			wt.Leaf(telemetry.StageHuffman, nowNs+csNs+diffNs, huffNs)
		}
		stageHist[telemetry.StageSample].Observe(windowNs)
		stageHist[telemetry.StageCSSample].Observe(csNs)
		stageHist[telemetry.StageDiff].Observe(diffNs)
		stageHist[telemetry.StageHuffman].Observe(huffNs)
		if tr != nil {
			seqArg := telemetry.I("seq", w)
			tr.Span(ses.Mote, tidAcquire, telemetry.StageSample, telemetry.CatWindow,
				w*windowNs, windowNs, seqArg)
			tr.Span(ses.Mote, tidEncode, telemetry.StageCSSample, telemetry.CatWindow,
				nowNs, csNs, seqArg)
			tr.Span(ses.Mote, tidEncode, telemetry.StageDiff, telemetry.CatWindow,
				nowNs+csNs, diffNs, seqArg)
			tr.Span(ses.Mote, tidEncode, telemetry.StageHuffman, telemetry.CatWindow,
				nowNs+csNs+diffNs, huffNs, seqArg,
				telemetry.I("bytes", int64(mr.Packet.WireSize())))
		}
		nowNs += csNs + diffNs + huffNs

		frames, txNs, err := transmit(mr.Packet)
		if err != nil {
			return nil, err
		}
		stageHist[telemetry.StageTX].Observe(txNs)
		if tr != nil {
			tr.Span(ses.Link, tidAir, telemetry.StageTX, telemetry.CatWindow, nowNs, txNs,
				telemetry.I("seq", w))
			if spans != nil {
				// The window's flow arrow starts on the transmit slice.
				tr.FlowStart(ses.Link, tidAir, telemetry.FlowWindow, telemetry.CatWindow,
					nowNs, int64(spans.TraceID(uint32(w))))
			}
		}
		if wt != nil {
			wt.Leaf(telemetry.StageTX, nowNs, txNs)
		}
		nowNs += txNs
		noteLoss(w)
		if err := deliver(frames, nowNs, txNs); err != nil {
			return nil, err
		}
		ctrlPkts, late := rx.EndSlot()
		score(late)
		for _, c := range ctrlPkts {
			if tr != nil {
				name := telemetry.EventNack
				if c.Kind == core.KindKeyRequest {
					name = telemetry.EventKeyRequest
				}
				tr.Instant(ses.Coordinator, tidRX, name, telemetry.CatWindow, nowNs)
			}
			if ctrl == nil {
				continue
			}
			if err := serveControl(c); err != nil {
				return nil, err
			}
		}
		if cfg.Observer != nil {
			st := rx.Stats()
			cfg.Observer.OnSlot(monitor.SlotStatus{
				Slot:       rep.Windows,
				Windows:    rep.Windows,
				Health:     rx.Health(),
				Decoded:    st.Decoded,
				Abandoned:  st.Abandoned,
				Gaps:       st.Gaps,
				Recoveries: st.Recoveries,
				GapRate:    rx.GapRate(),
				TimelineNs: nowNs,
			})
		}
	}
	if rep.Windows == 0 {
		return nil, fmt.Errorf("csecg: record shorter than one window")
	}
	// End of session: the reorder model releases anything still held,
	// then the receiver abandons what never arrived.
	if err := deliver(lnk.Flush(), nowNs, 0); err != nil {
		return nil, err
	}
	score(rx.Close())
	if cfg.Observer != nil {
		st := rx.Stats()
		cfg.Observer.OnSlot(monitor.SlotStatus{
			Slot:       rep.Windows,
			Windows:    rep.Windows,
			Health:     rx.Health(),
			Decoded:    st.Decoded,
			Abandoned:  st.Abandoned,
			Gaps:       st.Gaps,
			Recoveries: st.Recoveries,
			GapRate:    rx.GapRate(),
			TimelineNs: nowNs,
		})
	}

	rep.Transport = rx.Stats()
	rep.Decoded = rep.Transport.Decoded
	rep.CRCRejected = rep.Transport.Rejected
	rep.Shed = rep.Transport.Shed
	rep.Retransmits = m.Retransmits()
	if prCount > 0 {
		rep.MeanPRDN = sumPRDN / float64(prCount)
	}
	if estCount > 0 {
		rep.MeanEstPRDN = sumEst / float64(estCount)
	}
	if rep.Decoded > 0 {
		rep.MeanIterations = float64(sumIters) / float64(rep.Decoded)
		rep.MeanDecodeTime = sumDecode / time.Duration(rep.Decoded)
	}
	rep.WireCR = metrics.CR(rawBits, compBits)
	rep.MoteCPU = m.AverageCPUUsage()
	rep.CoordinatorCPU = dec.AverageCPUUsage()
	rep.Stages = make(map[string]telemetry.Summary, len(telemetry.Stages()))
	for _, s := range telemetry.Stages() {
		rep.Stages[s] = stageHist[s].Summarize()
	}
	rep.DecodeLatency = latHist.Summarize()
	rep.SolverIterations = reg.Histogram("coordinator_iterations").Summarize()
	if cfg.Recorder != nil {
		rep.BundlesWritten = cfg.Recorder.BundlesWritten()
	}

	// Energy: compare against streaming the raw 12-bit samples. The
	// downlink airtime already includes every retransmission the mote
	// served, so lossy sessions pay for their recovery honestly.
	st := lnk.Stats()
	rep.LinkStats = st
	if ctrl != nil {
		rep.ControlStats = ctrl.Stats()
	}
	rep.Lost = int(st.Dropped + st.Corrupted)
	windowSeconds := float64(n) / FsMote
	rep.AirtimePerWindow = st.Airtime / time.Duration(rep.Windows)
	budget := energy.DefaultBudget()
	rawAirtime := lnk.Airtime(n * 12 / 8)
	rawLoad, err := energy.LoadFromAirtime(rawAirtime, 0, windowSeconds)
	if err != nil {
		return nil, err
	}
	csLoad, err := energy.LoadFromAirtime(rep.AirtimePerWindow,
		time.Duration(rep.MoteCPU*windowSeconds*float64(time.Second)), windowSeconds)
	if err != nil {
		return nil, err
	}
	if rep.LifetimeRaw, err = budget.Lifetime(rawLoad); err != nil {
		return nil, err
	}
	if rep.LifetimeCS, err = budget.Lifetime(csLoad); err != nil {
		return nil, err
	}
	rep.Extension = rep.LifetimeCS.Seconds()/rep.LifetimeRaw.Seconds() - 1

	if len(decodeTimes) > 0 {
		rep.Display, err = coordinator.SimulateDisplay(coordinator.DisplayConfig{}, windowSeconds, decodeTimes)
		if err != nil {
			return nil, err
		}
	}
	return rep, nil
}
