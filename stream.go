package csecg

import (
	"fmt"
	"time"

	"csecg/internal/coordinator"
	"csecg/internal/energy"
	"csecg/internal/link"
	"csecg/internal/metrics"
	"csecg/internal/mote"
)

// StreamConfig describes an end-to-end monitoring session: one record
// channel streamed through the instrumented mote, the Bluetooth link and
// the real-time coordinator.
type StreamConfig struct {
	// RecordID selects the substitute-database record (default "100").
	RecordID string
	// Channel selects the lead (0 or 1).
	Channel int
	// Seconds of signal to stream (default 60).
	Seconds float64
	// Params configures the pipeline.
	Params Params
	// Mode selects the coordinator build (default ModeNEON).
	Mode coordinator.Mode
	// Link configures the transport (zero value → DefaultLinkConfig).
	Link LinkConfig
}

// StreamReport aggregates a session.
type StreamReport struct {
	// Windows processed and packets lost on the link.
	Windows, Lost int
	// MeanPRDN and WorstPRDN summarize reconstruction quality over the
	// successfully decoded windows (excluding the cold-start window).
	MeanPRDN, WorstPRDN float64
	// WireCR is the overall compression ratio of Eq. (7) including
	// packet framing, against 12-bit raw streaming.
	WireCR float64
	// MoteCPU and CoordinatorCPU are mean modeled CPU shares.
	MoteCPU, CoordinatorCPU float64
	// MeanIterations and MeanDecodeTime characterize the recovery cost.
	MeanIterations float64
	// MeanDecodeTime is the modeled on-device decode time per packet.
	MeanDecodeTime time.Duration
	// AirtimePerWindow is the radio-on time per 2-second window.
	AirtimePerWindow time.Duration
	// LifetimeRaw and LifetimeCS are modeled node lifetimes streaming
	// uncompressed versus CS-compressed; Extension is their ratio − 1.
	LifetimeRaw, LifetimeCS time.Duration
	// Extension is the relative lifetime gain (the paper: 12.9% at CR 50).
	Extension float64
	// Display is the viewer simulation over the session's decode times.
	Display *coordinator.DisplayReport
}

// RunStream executes the full pipeline and returns the session report.
func RunStream(cfg StreamConfig) (*StreamReport, error) {
	if cfg.RecordID == "" {
		cfg.RecordID = "100"
	}
	if cfg.Seconds == 0 {
		cfg.Seconds = 60
	}
	if cfg.Link.EffectiveBitrate == 0 {
		cfg.Link = DefaultLinkConfig()
	}
	rec, err := RecordByID(cfg.RecordID)
	if err != nil {
		return nil, err
	}
	samples, err := rec.Channel256(cfg.Seconds, cfg.Channel)
	if err != nil {
		return nil, err
	}
	m, err := mote.New(cfg.Params)
	if err != nil {
		return nil, err
	}
	dec, err := coordinator.NewRealTimeDecoder(cfg.Params, cfg.Mode)
	if err != nil {
		return nil, err
	}
	lnk, err := link.New(cfg.Link)
	if err != nil {
		return nil, err
	}
	rep := &StreamReport{}
	var rawBits, compBits int
	var sumPRDN float64
	var prCount int
	var sumIters int64
	var decodeTimes []float64
	var sumDecode time.Duration
	n := cfg.Params.N
	if n == 0 {
		n = WindowSize
	}
	for o := 0; o+n <= len(samples); o += n {
		win := samples[o : o+n]
		mr, err := m.EncodeWindow(win)
		if err != nil {
			return nil, fmt.Errorf("csecg: encoding window %d: %w", rep.Windows, err)
		}
		rep.Windows++
		rawBits += n * 12
		compBits += mr.Packet.WireSize() * 8
		rx, _, err := lnk.TransmitPacket(mr.Packet)
		if err != nil {
			return nil, err
		}
		if rx == nil {
			rep.Lost++
			continue
		}
		res, err := dec.Decode(rx)
		if err != nil {
			// Sequence gap after loss: wait for the next key frame.
			continue
		}
		sumIters += int64(res.Iterations)
		sumDecode += res.ModeledTime
		decodeTimes = append(decodeTimes, res.ModeledTime.Seconds())
		if rep.Windows > 1 { // skip cold start in the quality stats
			orig := make([]float64, n)
			reco := make([]float64, n)
			for i := range win {
				orig[i] = float64(win[i])
				reco[i] = float64(res.Samples[i])
			}
			prdn, err := metrics.PRDN(orig, reco)
			if err == nil {
				sumPRDN += prdn
				prCount++
				if prdn > rep.WorstPRDN {
					rep.WorstPRDN = prdn
				}
			}
		}
	}
	if rep.Windows == 0 {
		return nil, fmt.Errorf("csecg: record shorter than one window")
	}
	if prCount > 0 {
		rep.MeanPRDN = sumPRDN / float64(prCount)
	}
	decoded := rep.Windows - rep.Lost
	if decoded > 0 {
		rep.MeanIterations = float64(sumIters) / float64(decoded)
		rep.MeanDecodeTime = sumDecode / time.Duration(decoded)
	}
	rep.WireCR = metrics.CR(rawBits, compBits)
	rep.MoteCPU = m.AverageCPUUsage()
	rep.CoordinatorCPU = dec.AverageCPUUsage()

	// Energy: compare against streaming the raw 12-bit samples.
	st := lnk.Stats()
	windowSeconds := float64(n) / FsMote
	if rep.Windows > 0 {
		rep.AirtimePerWindow = st.Airtime / time.Duration(rep.Windows)
	}
	budget := energy.DefaultBudget()
	rawAirtime := lnk.Airtime(n * 12 / 8)
	rawLoad, err := energy.LoadFromAirtime(rawAirtime, 0, windowSeconds)
	if err != nil {
		return nil, err
	}
	csLoad, err := energy.LoadFromAirtime(rep.AirtimePerWindow,
		time.Duration(rep.MoteCPU*windowSeconds*float64(time.Second)), windowSeconds)
	if err != nil {
		return nil, err
	}
	if rep.LifetimeRaw, err = budget.Lifetime(rawLoad); err != nil {
		return nil, err
	}
	if rep.LifetimeCS, err = budget.Lifetime(csLoad); err != nil {
		return nil, err
	}
	rep.Extension = rep.LifetimeCS.Seconds()/rep.LifetimeRaw.Seconds() - 1

	if len(decodeTimes) > 0 {
		rep.Display, err = coordinator.SimulateDisplay(coordinator.DisplayConfig{}, windowSeconds, decodeTimes)
		if err != nil {
			return nil, err
		}
	}
	return rep, nil
}
