package csecg

import (
	"fmt"
	"time"

	"csecg/internal/coordinator"
	"csecg/internal/core"
	"csecg/internal/energy"
	"csecg/internal/link"
	"csecg/internal/metrics"
	"csecg/internal/mote"
)

// StreamConfig describes an end-to-end monitoring session: one record
// channel streamed through the instrumented mote, the Bluetooth link and
// the real-time coordinator.
type StreamConfig struct {
	// RecordID selects the substitute-database record (default "100").
	RecordID string
	// Channel selects the lead (0 or 1).
	Channel int
	// Seconds of signal to stream (default 60).
	Seconds float64
	// Params configures the pipeline.
	Params Params
	// Mode selects the coordinator build (default ModeNEON).
	Mode coordinator.Mode
	// Link configures the data downlink (zero value → DefaultLinkConfig).
	Link LinkConfig
	// Transport configures the coordinator's fault-tolerant receive
	// path. The zero value reproduces the paper's baseline: losses are
	// ridden out until the next scheduled key frame. Setting
	// Transport.NACK enables the control channel and the mote's bounded
	// retransmit ring.
	Transport TransportConfig
	// ControlLink configures the uplink carrying NACK/key-request
	// control packets (nil → the data-link config with a derived fault
	// seed, so control traffic sees the same channel quality).
	ControlLink *LinkConfig
	// RetransmitRing overrides the mote's retransmit ring size when the
	// NACK protocol is enabled (0 → mote.DefaultRetransmitRing; must
	// fit the MSP430's 10 kB RAM).
	RetransmitRing int
}

// StreamReport aggregates a session.
type StreamReport struct {
	// Windows encoded by the mote; Lost counts frames the downlink
	// destroyed (dropped plus checksum-rejected corruption), including
	// lost retransmission attempts; Decoded counts the windows actually
	// reconstructed — under loss this is smaller than Windows−Lost
	// whenever desynchronized deltas had to be discarded too.
	Windows, Lost, Decoded int
	// MeanPRDN and WorstPRDN summarize reconstruction quality over the
	// successfully decoded windows (excluding the cold-start window).
	MeanPRDN, WorstPRDN float64
	// WireCR is the overall compression ratio of Eq. (7) including
	// packet framing, against 12-bit raw streaming.
	WireCR float64
	// MoteCPU and CoordinatorCPU are mean modeled CPU shares.
	MoteCPU, CoordinatorCPU float64
	// MeanIterations and MeanDecodeTime characterize the recovery cost.
	MeanIterations float64
	// MeanDecodeTime is the modeled on-device decode time per packet.
	MeanDecodeTime time.Duration
	// AirtimePerWindow is the radio-on time per 2-second window,
	// including retransmission airtime.
	AirtimePerWindow time.Duration
	// RetransmitAirtime is the share of downlink airtime spent on
	// NACK-driven retransmissions; Retransmits counts the ring hits the
	// mote served.
	RetransmitAirtime time.Duration
	Retransmits       int64
	// LifetimeRaw and LifetimeCS are modeled node lifetimes streaming
	// uncompressed versus CS-compressed; Extension is their ratio − 1.
	LifetimeRaw, LifetimeCS time.Duration
	// Extension is the relative lifetime gain (the paper: 12.9% at CR 50).
	Extension float64
	// Display is the viewer simulation over the session's decode times.
	Display *coordinator.DisplayReport
	// Transport reports the receiver's gap/resync accounting: gap
	// episodes, longest outage, recovery latency distribution, control
	// traffic.
	Transport TransportStats
	// LinkStats and ControlStats snapshot the fault counters of the
	// data downlink and the control uplink.
	LinkStats, ControlStats link.Stats
}

// RunStream executes the full pipeline and returns the session report.
func RunStream(cfg StreamConfig) (*StreamReport, error) {
	if cfg.RecordID == "" {
		cfg.RecordID = "100"
	}
	if cfg.Seconds == 0 {
		cfg.Seconds = 60
	}
	if cfg.Link.EffectiveBitrate == 0 {
		cfg.Link = DefaultLinkConfig()
	}
	rec, err := RecordByID(cfg.RecordID)
	if err != nil {
		return nil, err
	}
	samples, err := rec.Channel256(cfg.Seconds, cfg.Channel)
	if err != nil {
		return nil, err
	}
	m, err := mote.New(cfg.Params)
	if err != nil {
		return nil, err
	}
	dec, err := coordinator.NewRealTimeDecoder(cfg.Params, cfg.Mode)
	if err != nil {
		return nil, err
	}
	lnk, err := link.New(cfg.Link)
	if err != nil {
		return nil, err
	}
	var ctrl *link.Link
	if cfg.Transport.NACK {
		ring := cfg.RetransmitRing
		if ring == 0 {
			ring = mote.DefaultRetransmitRing
		}
		if err := m.EnableRetransmitBuffer(ring); err != nil {
			return nil, err
		}
		ctrlCfg := cfg.Link
		// Decorrelate the uplink's fault stream from the downlink's.
		ctrlCfg.Seed = cfg.Link.Seed ^ 0x9E3779B97F4A7C15
		if cfg.ControlLink != nil {
			ctrlCfg = *cfg.ControlLink
		}
		if ctrl, err = link.New(ctrlCfg); err != nil {
			return nil, err
		}
	}
	rx := coordinator.NewReceiver(dec, cfg.Transport)

	rep := &StreamReport{}
	var rawBits, compBits int
	var sumPRDN float64
	var prCount int
	var sumIters int64
	var decodeTimes []float64
	var sumDecode time.Duration
	n := cfg.Params.N
	if n == 0 {
		n = WindowSize
	}

	// Windows indexed by sequence number, for scoring late releases.
	var wins [][]int16
	score := func(out []coordinator.Decoded) {
		for _, d := range out {
			sumIters += int64(d.Res.Iterations)
			sumDecode += d.Res.ModeledTime
			decodeTimes = append(decodeTimes, d.Res.ModeledTime.Seconds())
			if d.Seq == 0 || int(d.Seq) >= len(wins) {
				continue // cold start is excluded from the quality stats
			}
			win := wins[d.Seq]
			orig := make([]float64, n)
			reco := make([]float64, n)
			for i := range win {
				orig[i] = float64(win[i])
				reco[i] = float64(d.Res.Samples[i])
			}
			prdn, err := metrics.PRDN(orig, reco)
			if err == nil {
				sumPRDN += prdn
				prCount++
				if prdn > rep.WorstPRDN {
					rep.WorstPRDN = prdn
				}
			}
		}
	}
	// deliver pushes every frame the channel produced into the receiver.
	deliver := func(pkts []*core.Packet) error {
		for _, p := range pkts {
			out, err := rx.Push(p)
			if err != nil {
				return err
			}
			score(out)
		}
		return nil
	}
	// serveControl carries one control packet over the uplink and, when
	// it survives, has the mote act on it. Retransmitted frames cross
	// the same lossy downlink as everything else.
	serveControl := func(c *core.Packet) error {
		up, _, err := ctrl.TransmitPacket(c)
		if err != nil || up == nil {
			return err
		}
		switch up.Kind {
		case core.KindNack:
			first, count, err := core.NackRange(up)
			if err != nil {
				return err
			}
			for i := 0; i < count; i++ {
				pkt, ok := m.Retransmit(first + uint32(i))
				if !ok {
					continue // aged out of the ring
				}
				before := lnk.Stats().Airtime
				pkts, _, err := lnk.TransmitPacketMulti(pkt)
				if err != nil {
					return err
				}
				rep.RetransmitAirtime += lnk.Stats().Airtime - before
				if err := deliver(pkts); err != nil {
					return err
				}
			}
		case core.KindKeyRequest:
			m.RequestKeyFrame()
		}
		return nil
	}

	for o := 0; o+n <= len(samples); o += n {
		win := samples[o : o+n]
		mr, err := m.EncodeWindow(win)
		if err != nil {
			return nil, fmt.Errorf("csecg: encoding window %d: %w", rep.Windows, err)
		}
		rep.Windows++
		wins = append(wins, win)
		rawBits += n * 12
		compBits += mr.Packet.WireSize() * 8
		pkts, _, err := lnk.TransmitPacketMulti(mr.Packet)
		if err != nil {
			return nil, err
		}
		if err := deliver(pkts); err != nil {
			return nil, err
		}
		ctrlPkts, late := rx.EndSlot()
		score(late)
		for _, c := range ctrlPkts {
			if ctrl == nil {
				continue
			}
			if err := serveControl(c); err != nil {
				return nil, err
			}
		}
	}
	if rep.Windows == 0 {
		return nil, fmt.Errorf("csecg: record shorter than one window")
	}
	// End of session: the reorder model releases anything still held,
	// then the receiver abandons what never arrived.
	if err := deliver(lnk.FlushPackets()); err != nil {
		return nil, err
	}
	score(rx.Close())

	rep.Transport = rx.Stats()
	rep.Decoded = rep.Transport.Decoded
	rep.Retransmits = m.Retransmits()
	if prCount > 0 {
		rep.MeanPRDN = sumPRDN / float64(prCount)
	}
	if rep.Decoded > 0 {
		rep.MeanIterations = float64(sumIters) / float64(rep.Decoded)
		rep.MeanDecodeTime = sumDecode / time.Duration(rep.Decoded)
	}
	rep.WireCR = metrics.CR(rawBits, compBits)
	rep.MoteCPU = m.AverageCPUUsage()
	rep.CoordinatorCPU = dec.AverageCPUUsage()

	// Energy: compare against streaming the raw 12-bit samples. The
	// downlink airtime already includes every retransmission the mote
	// served, so lossy sessions pay for their recovery honestly.
	st := lnk.Stats()
	rep.LinkStats = st
	if ctrl != nil {
		rep.ControlStats = ctrl.Stats()
	}
	rep.Lost = int(st.Dropped + st.Corrupted)
	windowSeconds := float64(n) / FsMote
	rep.AirtimePerWindow = st.Airtime / time.Duration(rep.Windows)
	budget := energy.DefaultBudget()
	rawAirtime := lnk.Airtime(n * 12 / 8)
	rawLoad, err := energy.LoadFromAirtime(rawAirtime, 0, windowSeconds)
	if err != nil {
		return nil, err
	}
	csLoad, err := energy.LoadFromAirtime(rep.AirtimePerWindow,
		time.Duration(rep.MoteCPU*windowSeconds*float64(time.Second)), windowSeconds)
	if err != nil {
		return nil, err
	}
	if rep.LifetimeRaw, err = budget.Lifetime(rawLoad); err != nil {
		return nil, err
	}
	if rep.LifetimeCS, err = budget.Lifetime(csLoad); err != nil {
		return nil, err
	}
	rep.Extension = rep.LifetimeCS.Seconds()/rep.LifetimeRaw.Seconds() - 1

	if len(decodeTimes) > 0 {
		rep.Display, err = coordinator.SimulateDisplay(coordinator.DisplayConfig{}, windowSeconds, decodeTimes)
		if err != nil {
			return nil, err
		}
	}
	return rep, nil
}
