package csecg

import (
	"testing"
	"time"

	"csecg/internal/telemetry"
)

// streamTrace runs a short clean session with tracing attached and
// returns the report plus the recorded events.
func streamTrace(t *testing.T, cfg StreamConfig) (*StreamReport, []TraceEvent) {
	t.Helper()
	tr := NewTracer(NewManualClock(0))
	cfg.Trace = tr
	cfg.Metrics = NewMetrics()
	cfg.Clock = NewManualClock(0)
	rep, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep, tr.Events()
}

// TestStreamTraceCoversEveryStage is the PR's acceptance property: every
// decoded window must appear in the trace with all nine lifecycle
// stages.
func TestStreamTraceCoversEveryStage(t *testing.T) {
	rep, events := streamTrace(t, StreamConfig{
		RecordID: "100",
		Seconds:  12,
		Params:   Params{Seed: 0x0B5, M: MForCR(50, WindowSize)},
		Mode:     ModeNEON,
	})
	if rep.Decoded == 0 {
		t.Fatal("clean session decoded nothing")
	}
	// stage name → set of window seqs that have a span for it.
	seen := map[string]map[int64]bool{}
	fistaSpans := 0
	for _, e := range events {
		if e.Phase != telemetry.PhaseSpan || e.Cat != telemetry.CatWindow {
			continue
		}
		var seq int64 = -1
		for _, a := range e.Args {
			if a.Key == "seq" {
				seq = a.Int
			}
		}
		if seq < 0 {
			continue
		}
		if seen[e.Name] == nil {
			seen[e.Name] = map[int64]bool{}
		}
		seen[e.Name][seq] = true
		if e.Name == telemetry.StageFISTA {
			fistaSpans++
		}
	}
	for _, stage := range PipelineStages() {
		for seq := int64(0); seq < int64(rep.Decoded); seq++ {
			if !seen[stage][seq] {
				t.Errorf("window %d has no %q span", seq, stage)
			}
		}
	}
	if fistaSpans != rep.Decoded {
		t.Errorf("%d fista spans for %d decoded windows", fistaSpans, rep.Decoded)
	}
	// Report summaries must be populated from the same session.
	for _, stage := range PipelineStages() {
		if rep.Stages[stage].Count == 0 {
			t.Errorf("report has no %q stage observations", stage)
		}
	}
	if got := rep.SolverIterations.Count; got != int64(rep.Decoded) {
		t.Errorf("solver iteration summary has %d observations, want %d", got, rep.Decoded)
	}
}

// TestStreamTraceSpansDisjointPerTrack pins the modeled-timeline
// invariant: spans sharing one (pid, tid) track never overlap, so the
// trace renders as a clean lane per pipeline resource.
func TestStreamTraceSpansDisjointPerTrack(t *testing.T) {
	_, events := streamTrace(t, StreamConfig{
		RecordID: "100",
		Seconds:  10,
		Params:   Params{Seed: 0x0B5, M: MForCR(50, WindowSize)},
		Mode:     ModeNEON,
	})
	type key struct{ pid, tid int64 }
	lastEnd := map[key]int64{}
	for _, e := range events {
		if e.Phase != telemetry.PhaseSpan {
			continue
		}
		k := key{e.PID, e.TID}
		if e.TS < lastEnd[k] {
			t.Fatalf("span %q at %d ns overlaps previous span on pid %d tid %d (ends %d)",
				e.Name, e.TS, e.PID, e.TID, lastEnd[k])
		}
		if e.Dur < 0 {
			t.Fatalf("span %q has negative duration %d", e.Name, e.Dur)
		}
		lastEnd[k] = e.TS + e.Dur
	}
}

// TestStreamDecodeLatencyPerWindow pins the per-window recovery-latency
// accounting. A clean session recovers every window within its 2-second
// real-time budget; a bursty NACK session recovers gapped windows whole
// slots late — visible in DecodeLatency.Max, invisible to the session
// mean MeanDecodeTime.
func TestStreamDecodeLatencyPerWindow(t *testing.T) {
	base := StreamConfig{
		RecordID: "100",
		Seconds:  60,
		Params:   Params{Seed: 0x7A4, M: MForCR(50, WindowSize)},
		Mode:     ModeNEON,
	}

	clean, err := RunStream(base)
	if err != nil {
		t.Fatal(err)
	}
	if clean.DecodeLatency.Count != int64(clean.Decoded) {
		t.Fatalf("clean: %d latency observations for %d decoded windows",
			clean.DecodeLatency.Count, clean.Decoded)
	}
	budget := int64(2 * time.Second)
	if clean.DecodeLatency.Max > budget {
		t.Errorf("clean session worst recovery latency %v exceeds the 2 s window period",
			time.Duration(clean.DecodeLatency.Max))
	}

	lossy := base
	lossy.Link = DefaultLinkConfig()
	lossy.Link.Burst = &BurstConfig{PGoodBad: 0.06, PBadGood: 0.50}
	lossy.Link.BitFlipProb = 0.0002
	lossy.Link.Seed = 0xC4A7
	lossy.Transport = TransportConfig{NACK: true}
	rep, err := RunStream(lossy)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transport.Gaps == 0 {
		t.Fatal("lossy session produced no gaps; channel config too mild to exercise recovery")
	}
	if rep.DecodeLatency.Count != int64(rep.Decoded) {
		t.Fatalf("lossy: %d latency observations for %d decoded windows",
			rep.DecodeLatency.Count, rep.Decoded)
	}
	// Windows recovered via NACK arrive at least one slot after their
	// acquisition, so the per-window tail must exceed the clean bound...
	if rep.DecodeLatency.Max <= budget {
		t.Errorf("lossy worst recovery latency %v, want > %v (gap recovery spans slots)",
			time.Duration(rep.DecodeLatency.Max), time.Duration(budget))
	}
	if rep.DecodeLatency.Max <= clean.DecodeLatency.Max {
		t.Errorf("lossy tail %v not above clean tail %v",
			time.Duration(rep.DecodeLatency.Max), time.Duration(clean.DecodeLatency.Max))
	}
	// ...while the session-mean decode time stays comfortably sub-second,
	// which is exactly why the mean alone cannot express recovery
	// latency.
	if rep.MeanDecodeTime >= time.Second {
		t.Errorf("mean decode time %v, want < 1 s", rep.MeanDecodeTime)
	}
}

// TestStreamSharedRegistryAcrossSessions checks that callers can pool
// several sessions into one registry, the csecg-bench -metrics shape.
func TestStreamSharedRegistryAcrossSessions(t *testing.T) {
	reg := NewMetrics()
	var windows int64
	for _, id := range []string{"100", "101"} {
		rep, err := RunStream(StreamConfig{
			RecordID: id,
			Seconds:  8,
			Params:   Params{Seed: 0x33, M: MForCR(50, WindowSize)},
			Mode:     ModeNEON,
			Metrics:  reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		windows += int64(rep.Windows)
	}
	if got := reg.Counter("mote_windows_total").Load(); got != windows {
		t.Errorf("pooled mote_windows_total = %d, want %d", got, windows)
	}
	if reg.Histogram("stream_decode_latency_ns").Count() == 0 {
		t.Error("pooled registry missing decode-latency observations")
	}
}

// TestStreamReportsCRCRejections pins the ingest integrity wiring: on a
// bit-flipping channel the receiver's CRC — not the link model —
// rejects corrupt frames, and the count surfaces in the report and the
// telemetry registry.
func TestStreamReportsCRCRejections(t *testing.T) {
	reg := NewMetrics()
	cfg := StreamConfig{
		RecordID: "100",
		Seconds:  60,
		Params:   Params{Seed: 0x7A4, M: MForCR(50, WindowSize), KeyFrameInterval: 8},
		Mode:     ModeNEON,
		Metrics:  reg,
	}
	cfg.Link = DefaultLinkConfig()
	cfg.Link.BitFlipProb = 0.001
	cfg.Link.Seed = 0xBADC0DE
	rep, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CRCRejected == 0 {
		t.Fatal("bit-flipping channel produced no CRC rejections; corruption bypassed ingest")
	}
	if rep.CRCRejected != rep.Transport.Rejected {
		t.Fatalf("CRCRejected %d != Transport.Rejected %d", rep.CRCRejected, rep.Transport.Rejected)
	}
	if got := reg.Counter("transport_crc_rejected_total").Load(); got != int64(rep.CRCRejected) {
		t.Fatalf("transport_crc_rejected_total = %d, want %d", got, rep.CRCRejected)
	}
	// Rejected frames are losses: the session still recovers and decodes.
	if rep.Decoded == 0 {
		t.Fatal("nothing decoded under corruption")
	}
}
