# Mirrors .github/workflows/ci.yml so `make check` reproduces CI locally.

GO ?= go

.PHONY: check vet lint vet-baseline-empty stack-budget race-analysis build test race chaos fuzz-smoke replay-smoke triage-smoke bench perf perf-gate

check: vet lint vet-baseline-empty stack-budget build test race race-analysis chaos fuzz-smoke replay-smoke triage-smoke

# vet runs the toolchain vet plus the full csecg-vet v3 suite (interval
# rangecheck and stackcheck included) with no baseline: the tree itself
# must be clean.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/csecg-vet ./...

# lint runs the paper-constraint analyzers (no-FPU mote path and
# zero-alloc hot loops — both transitive through the call graph —
# RAM/flash budgets, determinism, dropped errors, mutexes held across
# blocking calls, goroutine shutdown paths, metric naming/export, and
# the v3 interval engine: rangecheck overflow proofs and stackcheck
# worst-case stack bounds) against the committed baseline.
lint:
	$(GO) run ./cmd/csecg-vet -baseline vet-baseline.json ./...

# stack-budget fails if the machine-computed worst-case device stack
# exceeds the RAMStackMisc ledger line (DESIGN.md §15). The -stack-report
# run prints the per-entry-point bounds for the build log.
stack-budget:
	$(GO) run ./cmd/csecg-vet -stack-report ./...
	$(GO) test -run TestStackBoundCoversLedger -v ./internal/analysis/

# race-analysis runs the analyzer suite (including the whole-module
# clean gate and the stack-bound pin, which -short skips) under the race
# detector.
race-analysis:
	$(GO) test -race ./internal/analysis/...

# The committed baseline must stay empty: csecg-vet -write-baseline
# exists for bisecting and bootstrapping new analyzers, but no finding
# may ship suppressed.
vet-baseline-empty:
	@test "$$(tr -d '[:space:]' < vet-baseline.json)" = "[]" || \
		{ echo "vet-baseline.json suppresses findings; fix or waive them in-tree"; exit 1; }

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race instrumentation slows the FISTA-heavy experiment-shape tests past
# any reasonable timeout; they run un-instrumented in `test` and skip
# themselves under -short.
race:
	$(GO) test -race -short ./...

# chaos runs the survival-layer acceptance matrix (bit flips, burst
# loss, mote reboot, CPU slowdown, decode panics, clock drift) at CI
# smoke size; it exits nonzero on any survival-contract violation.
chaos:
	$(GO) run ./cmd/csecg-bench -exp chaos -short

fuzz-smoke:
	$(GO) test -fuzz=FuzzPacketStream -fuzztime=10s -run=FuzzPacketStream ./internal/core
	$(GO) test -fuzz=FuzzUnmarshalPacket -fuzztime=10s -run=FuzzUnmarshalPacket ./internal/core
	$(GO) test -fuzz=FuzzParseBundle -fuzztime=10s -run=FuzzParseBundle ./internal/blackbox

# replay-smoke closes the incident-forensics loop end to end: run the
# chaos matrix with the flight recorder sealing diagnostics bundles,
# then replay every sealed bundle through the real receiver + solver
# stack and fail on any divergence from the record (DESIGN.md §13).
replay-smoke:
	rm -rf bundles-smoke
	$(GO) run ./cmd/csecg-bench -exp chaos -short -record-dir bundles-smoke
	@ls bundles-smoke/*.jsonl >/dev/null 2>&1 || { echo "replay-smoke: chaos run sealed no bundles"; exit 1; }
	$(GO) run ./cmd/csecg-replay -v bundles-smoke/*.jsonl

# triage-smoke closes the latency-attribution loop: run the burst-loss
# chaos matrix with causal span tracing, pipe the trace JSONL into
# csecg-triage, and fail if any window's per-stage span durations
# diverge from its end-to-end decode latency (DESIGN.md §14).
triage-smoke:
	rm -f traces-smoke.jsonl
	$(GO) run ./cmd/csecg-bench -exp chaos -short -spans traces-smoke.jsonl
	$(GO) run ./cmd/csecg-triage traces-smoke.jsonl

bench:
	$(GO) test -bench=. -benchmem ./...

# perf writes the machine-readable perf-suite summary; perf-gate runs
# the CI regression comparison against the committed baseline (fails on
# >15% normalized growth — see internal/bench).
perf:
	$(GO) run ./cmd/csecg-bench -json BENCH_4.json

perf-gate:
	$(GO) run ./cmd/csecg-bench -compare BENCH_4.json
