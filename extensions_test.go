package csecg

import (
	"testing"
)

func TestQRSFacade(t *testing.T) {
	det, err := NewQRSDetector(360)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecordByID("100")
	if err != nil {
		t.Fatal(err)
	}
	sig, err := rec.Synthesize(20)
	if err != nil {
		t.Fatal(err)
	}
	found := det.Detect(sig.MV[0])
	var ref []int
	for _, a := range sig.Ann {
		ref = append(ref, a.Sample)
	}
	st := MatchBeats(found, ref, 18)
	if st.F1() < 0.9 {
		t.Errorf("facade QRS F1 %.3f", st.F1())
	}
}

func TestAdaptiveFacade(t *testing.T) {
	base := Params{Seed: 3}
	enc, err := NewAdaptiveEncoder(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewAdaptiveDecoder32(base, DefaultAdaptiveLevels())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecordByID("100")
	if err != nil {
		t.Fatal(err)
	}
	adc, err := rec.Channel256(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o+WindowSize <= len(adc); o += WindowSize {
		f, err := enc.EncodeWindow(adc[o : o+WindowSize])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.DecodeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSessionFacade(t *testing.T) {
	base := Params{Seed: 11}
	enc, err := NewSessionEncoder(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewSessionDecoder32(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecordByID("100")
	if err != nil {
		t.Fatal(err)
	}
	ch0, err := rec.Channel256(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch1, err := rec.Channel256(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := enc.EncodeWindows([][]int16{ch0[:WindowSize], ch1[:WindowSize]})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if _, err := dec.DecodeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBeatClassificationFacade(t *testing.T) {
	det, err := NewQRSDetector(360)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecordByID("208")
	if err != nil {
		t.Fatal(err)
	}
	sig, err := rec.Synthesize(60)
	if err != nil {
		t.Fatal(err)
	}
	beats := det.DetectBeats(sig.MV[0])
	var refS []int
	var refV []bool
	for _, a := range sig.Ann {
		refS = append(refS, a.Sample)
		refV = append(refV, a.Type.String() == "V")
	}
	st := ScoreBeatClassification(beats, refS, refV, 18)
	if st.PVCSensitivity() < 0.8 {
		t.Errorf("facade PVC sensitivity %.3f", st.PVCSensitivity())
	}
}

func TestAnalogFacade(t *testing.T) {
	fe, err := NewAnalogFrontEnd(AnalogConfig{M: 64, N: 128, Oversample: 4, WindowSeconds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fe.ChipCount() != 512 {
		t.Errorf("ChipCount = %d", fe.ChipCount())
	}
}

func TestDWTBaselineFacade(t *testing.T) {
	enc, err := NewDWTEncoder(512, 4, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDWTDecoder(512, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	win := make([]int16, 512)
	for i := range win {
		win[i] = int16(i%100 - 50)
	}
	data, err := enc.Encode(win)
	if err != nil {
		t.Fatal(err)
	}
	back, err := dec.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 512 {
		t.Errorf("decoded %d samples", len(back))
	}
}

func TestWFDBFacade(t *testing.T) {
	dir := t.TempDir()
	ch := []int16{1, 2, 3, 4}
	spec := WFDBSignalSpec{Gain: 200, Baseline: 1024, Units: "mV", ADCRes: 11, ADCZero: 1024}
	if err := WriteWFDBRecord(dir, "x", 360, ch, ch, spec, [2]string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	rec, err := ReadWFDBRecord(dir, "x")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Header.NumSamples != 4 {
		t.Errorf("NumSamples = %d", rec.Header.NumSamples)
	}
	anns := []WFDBAnnotation{{Sample: 10, Code: 1}, {Sample: 2000, Code: 5}}
	if err := WriteWFDBAnnotations(dir, "x", anns); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWFDBAnnotations(dir, "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Code != 5 {
		t.Errorf("annotations round trip: %+v", got)
	}
}

func TestDCTBasisFacade(t *testing.T) {
	params := Params{Seed: 1, Basis: BasisDCT, M: MForCR(40, WindowSize)}
	if _, err := NewDecoder32(params); err != nil {
		t.Fatal(err)
	}
	if _, err := NewEncoder(params); err != nil {
		t.Fatal(err)
	}
}

func TestHolterFacade(t *testing.T) {
	det, err := NewQRSDetector(360)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecordByID("202") // atrial fibrillation
	if err != nil {
		t.Fatal(err)
	}
	sig, err := rec.Synthesize(180)
	if err != nil {
		t.Fatal(err)
	}
	var beats []HolterBeat
	for _, b := range det.DetectBeats(sig.MV[0]) {
		beats = append(beats, HolterBeat{Time: float64(b.Sample) / 360, Ventricular: b.Ventricular})
	}
	rep, err := AnalyzeHolter(beats)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanHR < 40 || rep.MeanHR > 120 {
		t.Errorf("MeanHR %v", rep.MeanHR)
	}
	if CompareHolterReports(rep, rep) != 0 {
		t.Error("self-comparison nonzero")
	}
	_, frac, err := DetectAF(beats)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.6 {
		t.Errorf("AF fraction %v on an AF record", frac)
	}
	sp, err := AnalyzeSpectralHRV(beats)
	if err != nil {
		t.Fatal(err)
	}
	if sp.LFPower <= 0 || sp.HFPower <= 0 {
		t.Errorf("spectral powers %v/%v", sp.LFPower, sp.HFPower)
	}
}
