package csecg_test

import (
	"fmt"
	"log"

	"csecg"
)

// ExampleNewEncoder shows the minimal compress → wire → reconstruct
// round trip.
func ExampleNewEncoder() {
	params := csecg.Params{Seed: 42, M: csecg.MForCR(50, csecg.WindowSize)}
	enc, err := csecg.NewEncoder(params)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := csecg.NewDecoder32(params)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := csecg.RecordByID("100")
	if err != nil {
		log.Fatal(err)
	}
	samples, err := rec.Channel256(2, 0)
	if err != nil {
		log.Fatal(err)
	}
	pkt, err := enc.EncodeWindow(samples[:csecg.WindowSize])
	if err != nil {
		log.Fatal(err)
	}
	wire, err := csecg.MarshalPacket(pkt)
	if err != nil {
		log.Fatal(err)
	}
	rx, _, err := csecg.UnmarshalPacket(wire)
	if err != nil {
		log.Fatal(err)
	}
	out, err := dec.DecodePacket(rx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first packet is a key frame:", pkt.Kind == csecg.KindKey)
	fmt.Println("wire smaller than raw:", len(wire) < csecg.WindowSize*12/8)
	fmt.Println("reconstructed samples:", len(out.Samples))
	// Output:
	// first packet is a key frame: true
	// wire smaller than raw: true
	// reconstructed samples: 512
}

// ExampleMForCR converts a target compression ratio to a measurement
// count.
func ExampleMForCR() {
	fmt.Println(csecg.MForCR(50, csecg.WindowSize))
	fmt.Println(csecg.MForCR(75, csecg.WindowSize))
	// Output:
	// 256
	// 128
}

// ExampleSNR relates the paper's two quality metrics.
func ExampleSNR() {
	fmt.Printf("%.0f dB\n", csecg.SNR(1))  // 1% PRD
	fmt.Printf("%.0f dB\n", csecg.SNR(10)) // 10% PRD
	// Output:
	// 40 dB
	// 20 dB
}

// ExampleDatabase iterates the substitute MIT-BIH record set.
func ExampleDatabase() {
	db := csecg.Database()
	fmt.Println("records:", len(db))
	fmt.Println("first:", db[0].ID, "-", db[0].Description)
	// Output:
	// records: 48
	// first: 100 - normal sinus rhythm, rare APCs
}

// ExampleRunStream runs a complete monitored session through the
// platform models.
func ExampleRunStream() {
	rep, err := csecg.RunStream(csecg.StreamConfig{
		RecordID: "100",
		Seconds:  10,
		Params:   csecg.Params{Seed: 9, M: csecg.MForCR(50, csecg.WindowSize)},
		Mode:     csecg.ModeNEON,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("windows:", rep.Windows)
	fmt.Println("mote under 5% CPU:", rep.MoteCPU < 0.05)
	fmt.Println("lifetime extended:", rep.Extension > 0)
	// Output:
	// windows: 5
	// mote under 5% CPU: true
	// lifetime extended: true
}
