// Package csecg is a complete Go implementation of the real-time
// compressed-sensing ECG monitoring system of Kanoun, Mamaghanian,
// Khaled and Atienza (DATE 2011): a computationally light CS encoder
// suited to a 16-bit wireless sensor mote, and a real-time FISTA-based
// reconstruction decoder suited to a smartphone-class WBSN coordinator.
//
// The pipeline compresses 2-second windows (512 samples at 256 Hz) in
// three integer-only stages — sparse binary CS measurement, inter-packet
// redundancy removal, canonical length-limited Huffman coding — and
// reconstructs them by solving min ‖α‖₁ s.t. ‖ΦΨα − y‖₂ ≤ σ with FISTA
// over a matrix-free ΦΨ operator (Φ a sparse binary sensing matrix, Ψ an
// orthonormal Daubechies wavelet basis).
//
// Quick start:
//
//	params := csecg.Params{Seed: 42, M: csecg.MForCR(50, csecg.WindowSize)}
//	enc, _ := csecg.NewEncoder(params)
//	dec, _ := csecg.NewDecoder32(params)
//	pkt, _ := enc.EncodeWindow(window)   // []int16, 512 raw ADC samples
//	out, _ := dec.DecodePacket(pkt)      // out.Samples is the reconstruction
//
// Evaluation data comes from a deterministic synthetic substitute for
// the MIT-BIH Arrhythmia Database (see Database), and platform behaviour
// (MSP430-class mote cycles/memory, Cortex-A8 VFP/NEON decode time,
// Bluetooth airtime, battery lifetime) is modeled by the Mote,
// coordinator and energy APIs. See DESIGN.md for the system inventory
// and EXPERIMENTS.md for the paper-versus-measured record.
package csecg

import (
	"io"

	"csecg/internal/blackbox"
	"csecg/internal/coordinator"
	"csecg/internal/core"
	"csecg/internal/ecg"
	"csecg/internal/energy"
	"csecg/internal/huffman"
	"csecg/internal/link"
	"csecg/internal/metrics"
	"csecg/internal/mote"
	"csecg/internal/telemetry"
)

// Pipeline constants (see the paper, Section IV).
const (
	// FsMote is the encoder's input sample rate in Hz.
	FsMote = core.FsMote
	// WindowSize is the samples per packet (2 seconds at 256 Hz).
	WindowSize = core.WindowSize
	// DefaultColumnWeight is the sensing matrix column weight d = 12.
	DefaultColumnWeight = core.DefaultColumnWeight
)

// Core pipeline types.
type (
	// Params configures an encoder/decoder pair; both sides must agree.
	Params = core.Params
	// Packet is one encoded 2-second window.
	Packet = core.Packet
	// Encoder is the mote-side integer-only compressor.
	Encoder = core.Encoder
	// Decoder32 is the float32 (smartphone-class) decoder.
	Decoder32 = core.Decoder[float32]
	// Decoder64 is the float64 (workstation reference) decoder.
	Decoder64 = core.Decoder[float64]
	// Codebook is a canonical length-limited Huffman codebook.
	Codebook = huffman.Codebook
)

// Packet kinds. KindKey and KindDelta carry data downlink; KindNack and
// KindKeyRequest are the transport's uplink control packets.
const (
	KindKey        = core.KindKey
	KindDelta      = core.KindDelta
	KindNack       = core.KindNack
	KindKeyRequest = core.KindKeyRequest
)

// MaxNackRange caps the windows one NACK may request — the mote's
// retransmit ring can never usefully exceed it.
const MaxNackRange = core.MaxNackRange

// NewNack builds a control packet requesting retransmission of count
// windows starting at firstSeq.
func NewNack(firstSeq uint32, count int) *Packet { return core.NewNack(firstSeq, count) }

// NackRange parses a NACK's requested window range.
func NackRange(p *Packet) (uint32, int, error) { return core.NackRange(p) }

// NewKeyRequest builds a control packet asking the mote to promote its
// next window to a key frame.
func NewKeyRequest(nextSeq uint32) *Packet { return core.NewKeyRequest(nextSeq) }

// NewEncoder builds the mote-side encoder.
func NewEncoder(p Params) (*Encoder, error) { return core.NewEncoder(p) }

// NewDecoder32 builds the float32 decoder (the paper's iPhone build).
func NewDecoder32(p Params) (*Decoder32, error) { return core.NewDecoder[float32](p) }

// NewDecoder64 builds the float64 decoder (the paper's Matlab reference).
func NewDecoder64(p Params) (*Decoder64, error) { return core.NewDecoder[float64](p) }

// MarshalPacket serializes a packet for the wire.
func MarshalPacket(p *Packet) ([]byte, error) { return p.Marshal() }

// UnmarshalPacket parses one packet, returning it and the bytes consumed.
func UnmarshalPacket(data []byte) (*Packet, int, error) { return core.UnmarshalPacket(data) }

// TrainCodebook builds a Huffman codebook from a difference-symbol
// histogram over the 512-symbol alphabet (see DiffHistogramModel for the
// stock shape).
func TrainCodebook(freq []int) (*Codebook, error) { return huffman.Train(freq) }

// DiffHistogramModel returns the two-sided-geometric model histogram the
// stock codebook is trained on.
func DiffHistogramModel(scale float64) []int { return core.DiffHistogramModel(scale) }

// Evaluation data: the MIT-BIH substitute.
type (
	// Record is one synthetic database record.
	Record = ecg.Record
	// RecordConfig parameterizes signal synthesis.
	RecordConfig = ecg.Config
	// Signal is a rendered two-channel segment.
	Signal = ecg.Signal
	// Annotation marks one synthesized beat.
	Annotation = ecg.Annotation
)

// Database returns the 48-record substitute for the MIT-BIH Arrhythmia
// Database (deterministic, generated on demand).
func Database() []Record { return ecg.Database() }

// RecordByID fetches one substitute record ("100".."234").
func RecordByID(id string) (Record, error) { return ecg.RecordByID(id) }

// Metrics of Section III.
var (
	// CR is the compression ratio of Eq. (7) from bit counts.
	CR = metrics.CR
	// MForCR converts a target CS compression ratio into a measurement
	// count for length-n windows.
	MForCR = metrics.MForCR
	// PRD is the percentage root-mean-square difference.
	PRD = metrics.PRD
	// PRDN is the mean-removed PRD.
	PRDN = metrics.PRDN
	// SNR converts PRD to the paper's output SNR in dB.
	SNR = metrics.SNR
)

// Platform models.
type (
	// Mote is the instrumented MSP430-class encoder model.
	Mote = mote.Model
	// MoteReport is the per-window cost report.
	MoteReport = mote.Report
	// RealTimeDecoder is the Cortex-A8-class decoder model.
	RealTimeDecoder = coordinator.RealTimeDecoder
	// Link is the Bluetooth transport model.
	Link = link.Link
	// LinkConfig configures it.
	LinkConfig = link.Config
	// LinkStats snapshots the link's fault-injection counters.
	LinkStats = link.Stats
	// BurstConfig parameterizes the Gilbert–Elliott burst-loss channel.
	BurstConfig = link.BurstConfig
	// TransportConfig tunes the coordinator's fault-tolerant receive
	// path (reorder buffering, NACK resync, retry backoff).
	TransportConfig = coordinator.TransportConfig
	// TransportStats reports gap/resync accounting for a session.
	TransportStats = coordinator.TransportStats
	// Receiver is the coordinator's transport endpoint.
	Receiver = coordinator.Receiver
	// TransportDecoded pairs a released window with its sequence number.
	TransportDecoded = coordinator.Decoded
	// EnergyBudget is the battery/current model.
	EnergyBudget = energy.Budget
	// EnergyLoad is one radio/CPU duty operating point.
	EnergyLoad = energy.Load
)

// Coordinator execution modes.
const (
	// ModeVFP is the scalar floating-point build.
	ModeVFP = coordinator.VFP
	// ModeNEON is the SIMD-optimized build (2.43× faster end to end).
	ModeNEON = coordinator.NEON
)

// NewMote builds the instrumented mote encoder.
func NewMote(p Params) (*Mote, error) { return mote.New(p) }

// NewRealTimeDecoder builds the platform decoder with the mode's
// real-time iteration budget.
func NewRealTimeDecoder(p Params, mode coordinator.Mode) (*RealTimeDecoder, error) {
	return coordinator.NewRealTimeDecoder(p, mode)
}

// NewLink builds a Bluetooth-class transport.
func NewLink(cfg LinkConfig) (*Link, error) { return link.New(cfg) }

// NewReceiver builds the coordinator's fault-tolerant transport
// endpoint around a platform decoder.
func NewReceiver(dec *RealTimeDecoder, cfg TransportConfig) *Receiver {
	return coordinator.NewReceiver(dec, cfg)
}

// DefaultLinkConfig returns a clean 90 kbit/s serial-profile link.
func DefaultLinkConfig() LinkConfig { return link.DefaultConfig() }

// DefaultEnergyBudget returns Shimmer-class battery constants.
func DefaultEnergyBudget() EnergyBudget { return energy.DefaultBudget() }

// Observability: zero-alloc integer counters and histograms, the
// window-lifecycle tracer, and the three export formats (Prometheus
// text, JSONL event log, Chrome trace_event JSON).
type (
	// Metrics is a registry of integer-only counters, gauges and
	// log-bucketed histograms; recording is lock- and allocation-free.
	Metrics = telemetry.Registry
	// Tracer collects window-lifecycle trace events.
	Tracer = telemetry.Tracer
	// TraceEvent is one trace record (span, instant, counter or
	// metadata).
	TraceEvent = telemetry.Event
	// TraceArg is one key/value annotation on a trace event.
	TraceArg = telemetry.Arg
	// TelemetrySummary condenses a histogram: count, sum, max and the
	// interpolated p50/p95/p99.
	TelemetrySummary = telemetry.Summary
	// Clock supplies injectable nanosecond timestamps; all telemetry
	// timing goes through it so tests get bit-identical traces.
	Clock = telemetry.Clock
	// ManualClock is a settable test Clock.
	ManualClock = telemetry.ManualClock
)

// NewMetrics builds an empty telemetry registry.
func NewMetrics() *Metrics { return telemetry.NewRegistry() }

// NewTracer builds a tracer on the given clock (nil → wall clock).
func NewTracer(c Clock) *Tracer { return telemetry.NewTracer(c) }

// NewManualClock returns a manual clock starting at the given tick.
func NewManualClock(start int64) *ManualClock { return telemetry.NewManualClock(start) }

// TraceI builds an integer trace-event argument.
func TraceI(key string, v int64) TraceArg { return telemetry.I(key, v) }

// TraceS builds a string trace-event argument.
func TraceS(key, v string) TraceArg { return telemetry.S(key, v) }

// TraceF builds a float trace-event argument (host-side only).
func TraceF(key string, v float64) TraceArg { return telemetry.F(key, v) }

// WriteMetrics dumps a registry in the Prometheus text format.
func WriteMetrics(w io.Writer, m *Metrics) error { return telemetry.WritePrometheus(w, m) }

// WriteChromeTrace renders a tracer's events as Chrome trace_event JSON,
// loadable in chrome://tracing or Perfetto.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	return telemetry.WriteChromeTrace(w, t.Events())
}

// WriteTraceJSONL streams a tracer's events as one JSON object per line.
func WriteTraceJSONL(w io.Writer, t *Tracer) error {
	return telemetry.WriteJSONL(w, t.Events())
}

// ReadTraceJSONL parses an event log written by WriteTraceJSONL.
func ReadTraceJSONL(r io.Reader) ([]TraceEvent, error) { return telemetry.ReadJSONL(r) }

// PipelineStages lists the per-window lifecycle stage names in pipeline
// order (sample … reconstruct), the keys of StreamReport.Stages.
func PipelineStages() []string { return telemetry.Stages() }

// Causal span tracing: hierarchical per-window span trees with tail
// sampling and critical-path attribution (DESIGN.md §14).
type (
	// SpanTracer captures one session's causal window span trees;
	// attach via StreamConfig.Spans and feed the retained trees to
	// csecg-triage (SpanTraceRecord JSONL).
	SpanTracer = telemetry.CausalTracer
	// SpanTracerConfig sizes a SpanTracer.
	SpanTracerConfig = telemetry.CausalConfig
	// SpanTraceRecord is one window's span tree in the JSONL trace
	// interchange format.
	SpanTraceRecord = telemetry.TraceRecord
)

// NewSpanTracer builds a causal span tracer (every buffer preallocated;
// capture is zero-alloc).
func NewSpanTracer(cfg SpanTracerConfig) *SpanTracer { return telemetry.NewCausalTracer(cfg) }

// WriteSpanTraceJSONL writes span-tree records one JSON object per line
// — the csecg-triage input format.
func WriteSpanTraceJSONL(w io.Writer, recs []SpanTraceRecord) error {
	return telemetry.WriteTraceRecords(w, recs)
}

// ReadSpanTraceJSONL parses a span-tree JSONL stream.
func ReadSpanTraceJSONL(r io.Reader) ([]SpanTraceRecord, error) {
	return telemetry.ReadTraceRecords(r)
}

// Incident forensics: the black-box flight recorder, its sealed
// diagnostics bundles, and the deterministic replay harness.
type (
	// FlightRecorder rings recent session history (raw frames, decode
	// summaries, health/SLO events) and seals diagnostics bundles on
	// anomaly triggers; attach one via StreamConfig.Recorder.
	FlightRecorder = blackbox.Recorder
	// FlightRecorderConfig sizes a recorder's rings and rate limits.
	FlightRecorderConfig = blackbox.Config
	// DiagnosticsBundle is a parsed bundle.
	DiagnosticsBundle = blackbox.Bundle
	// BundleReplayReport is the outcome of replaying a bundle.
	BundleReplayReport = blackbox.ReplayReport
)

// NewFlightRecorder builds a black-box flight recorder.
func NewFlightRecorder(cfg FlightRecorderConfig) *FlightRecorder {
	return blackbox.NewRecorder(cfg)
}

// BundleDirSink returns a bundle sink writing files into dir.
func BundleDirSink(dir string) blackbox.Sink { return blackbox.DirSink(dir) }

// ReadBundle loads and parses a diagnostics bundle file.
func ReadBundle(path string) (*DiagnosticsBundle, error) { return blackbox.ReadBundleFile(path) }

// ReplayBundle feeds a bundle's raw frames back through a freshly built
// receiver and solver stack and diffs the per-window results against
// the recorded summaries.
func ReplayBundle(b *DiagnosticsBundle) (*BundleReplayReport, error) { return blackbox.Replay(b) }
