package csecg_test

// One benchmark per table/figure of the paper's evaluation, as indexed
// in DESIGN.md §4. The benchmarks run reduced workloads (one or two
// records, a few windows) so `go test -bench=. -benchmem` completes in
// minutes; `cmd/csecg-bench` regenerates the full tables.

import (
	"testing"

	"csecg"
	"csecg/internal/coordinator"
	"csecg/internal/core"
	"csecg/internal/experiments"
)

func benchOpt() experiments.Options {
	return experiments.Options{Records: []string{"100"}, SecondsPerRecord: 8}
}

// BenchmarkFig2SparseVsGaussian regenerates Fig. 2 (output SNR vs CR for
// sparse binary against Gaussian sensing).
func BenchmarkFig2SparseVsGaussian(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkFig6Precision regenerates Fig. 6 (PRD vs CR at float32 vs
// float64 decoder precision).
func BenchmarkFig6Precision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkFig7IterationsTime regenerates Fig. 7 (mean iterations and
// reconstruction time per packet vs CR).
func BenchmarkFig7IterationsTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkEncoderWindow measures the host cost of the full integer
// encoder per 2-second window (the mote's 82 ms claim is the modeled
// figure; this is the real arithmetic).
func BenchmarkEncoderWindow(b *testing.B) {
	params := csecg.Params{Seed: 1, M: csecg.MForCR(50, csecg.WindowSize)}
	enc, err := csecg.NewEncoder(params)
	if err != nil {
		b.Fatal(err)
	}
	rec, err := csecg.RecordByID("100")
	if err != nil {
		b.Fatal(err)
	}
	samples, err := rec.Channel256(4, 0)
	if err != nil {
		b.Fatal(err)
	}
	win := samples[:csecg.WindowSize]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.EncodeWindow(win); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(csecg.WindowSize), "samples/op")
}

// BenchmarkMemoryFootprint regenerates the §IV-A.2 memory table.
func BenchmarkMemoryFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Memory()
		if err != nil {
			b.Fatal(err)
		}
		if res.Mem.RAMTotal() == 0 {
			b.Fatal("empty footprint")
		}
	}
}

// BenchmarkSpeedupModel regenerates the §V VFP-vs-NEON table and reports
// the modeled speedup as a metric.
func BenchmarkSpeedupModel(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Speedup()
		if err != nil {
			b.Fatal(err)
		}
		last = res.Speedup
	}
	b.ReportMetric(last, "speedup")
}

// BenchmarkDecodeVFPvsNEON measures the real host-side decode at both
// kernel configurations — the executable counterpart of Figs. 3-5
// (loop peeling, if-conversion, outer-loop vectorization).
func BenchmarkDecodeVFPvsNEON(b *testing.B) {
	for _, mode := range []coordinator.Mode{coordinator.VFP, coordinator.NEON} {
		b.Run(mode.String(), func(b *testing.B) {
			params := csecg.Params{Seed: 1, M: csecg.MForCR(50, csecg.WindowSize)}
			enc, err := csecg.NewEncoder(params)
			if err != nil {
				b.Fatal(err)
			}
			rec, err := csecg.RecordByID("100")
			if err != nil {
				b.Fatal(err)
			}
			samples, err := rec.Channel256(4, 0)
			if err != nil {
				b.Fatal(err)
			}
			pkt, err := enc.EncodeWindow(samples[:csecg.WindowSize])
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dec, err := core.NewDecoder[float32](params)
				if err != nil {
					b.Fatal(err)
				}
				dec.SolverOptions.Vectorized = mode == coordinator.NEON
				dec.SolverOptions.MaxIter = 300
				dec.SolverOptions.Tol = -1
				b.StartTimer()
				if _, err := dec.DecodePacket(pkt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCPUUsage regenerates the §V CPU-usage table.
func BenchmarkCPUUsage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CPU(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if res.MoteCPU <= 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkLifetimeExtension regenerates the §V lifetime table.
func BenchmarkLifetimeExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Lifetime(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkConvergenceFISTAvsISTA regenerates the §II-B convergence
// study.
func BenchmarkConvergenceFISTAvsISTA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Convergence(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Checkpoints) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkAblationD regenerates the §IV-A.2 column-weight trade-off.
func BenchmarkAblationD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Encoder(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkAblationRedundancy regenerates the redundancy-removal
// ablation.
func BenchmarkAblationRedundancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RedundancyAblation(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 2 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkAblationBasis regenerates the wavelet-vs-DCT basis table.
func BenchmarkAblationBasis(b *testing.B) {
	opt := experiments.Options{Records: []string{"100", "208"}, SecondsPerRecord: 8}
	for i := 0; i < b.N; i++ {
		res, err := experiments.BasisAblation(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 2 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkBaselineDWT regenerates the CS-vs-transform-coding baseline
// table.
func BenchmarkBaselineDWT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Baseline(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkAnalogFrontEnd regenerates the digital-vs-analog CS table.
func BenchmarkAnalogFrontEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Analog(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkResilience regenerates the loss-vs-key-frame table.
func BenchmarkResilience(b *testing.B) {
	opt := experiments.Options{Records: []string{"100"}, SecondsPerRecord: 30}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Resilience(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkHolterReport regenerates the report-fidelity table.
func BenchmarkHolterReport(b *testing.B) {
	opt := experiments.Options{Records: []string{"106"}, SecondsPerRecord: 8}
	for i := 0; i < b.N; i++ {
		res, err := experiments.HolterReport(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkDiagnosticQRS regenerates the clinical-validity table.
func BenchmarkDiagnosticQRS(b *testing.B) {
	opt := experiments.Options{Records: []string{"106"}, SecondsPerRecord: 16}
	for i := 0; i < b.N; i++ {
		res, err := experiments.Diagnostic(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkEndToEndSession measures a complete 30-second monitored
// session through mote, link and coordinator models.
func BenchmarkEndToEndSession(b *testing.B) {
	cfg := csecg.StreamConfig{
		RecordID: "100",
		Seconds:  30,
		Params:   csecg.Params{Seed: 9, M: csecg.MForCR(50, csecg.WindowSize)},
		Mode:     csecg.ModeNEON,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := csecg.RunStream(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Windows == 0 {
			b.Fatal("no windows")
		}
	}
}
