package csecg

import (
	"testing"

	"csecg/internal/telemetry"
)

// TestStreamSpansTileLatency is the PR's acceptance property: for every
// traced window, the depth-1 span durations must sum to the end-to-end
// decode latency within 1% — on a lossy NACK session, so retransmit
// waits and slot-late recovery are on the critical path and the gap
// leaves have to account for them.
func TestStreamSpansTileLatency(t *testing.T) {
	spans := NewSpanTracer(SpanTracerConfig{
		Label:           "record 100",
		RetainAnomalous: 4096,
		RetainAll:       true,
	})
	cfg := StreamConfig{
		RecordID: "100",
		Seconds:  60,
		Params:   Params{Seed: 0x7A4, M: MForCR(50, WindowSize)},
		Mode:     ModeNEON,
		Spans:    spans,
	}
	cfg.Link = DefaultLinkConfig()
	cfg.Link.Burst = &BurstConfig{PGoodBad: 0.06, PBadGood: 0.50}
	cfg.Link.Seed = 0xC4A7
	cfg.Transport = TransportConfig{NACK: true}
	rep, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transport.Gaps == 0 {
		t.Fatal("lossy session produced no gaps; nothing retransmitted")
	}

	kept := spans.Retained()
	if len(kept) != rep.Decoded {
		t.Fatalf("retained %d traces for %d decoded windows (RetainAll)", len(kept), rep.Decoded)
	}
	retransmitted := 0
	for i := range kept {
		w := &kept[i]
		if w.Flags&telemetry.FlagShed != 0 {
			continue
		}
		if w.LatencyNs <= 0 {
			t.Fatalf("trace %s (seq %d) has latency %d", telemetry.TraceIDString(w.TraceID), w.Seq, w.LatencyNs)
		}
		sum := w.LeafSumNs()
		gap := sum - w.LatencyNs
		if gap < 0 {
			gap = -gap
		}
		if float64(gap) > 0.01*float64(w.LatencyNs) {
			t.Errorf("seq %d: span sum %d diverges from latency %d by %.2f%%",
				w.Seq, sum, w.LatencyNs, 100*float64(gap)/float64(w.LatencyNs))
		}
		hasRetx := false
		for _, s := range w.Spans() {
			if s.Stage == telemetry.StageRetransmit {
				hasRetx = true
				if s.Attempt < 1 {
					t.Errorf("seq %d: retransmit span with attempt %d", w.Seq, s.Attempt)
				}
			}
		}
		if hasRetx {
			retransmitted++
			if w.Flags&telemetry.FlagRetransmit == 0 {
				t.Errorf("seq %d: retransmit spans present but FlagRetransmit unset", w.Seq)
			}
		}
	}
	if retransmitted == 0 {
		t.Error("no retained trace carries a retransmit span despite transport gaps")
	}
}

// TestStreamSpanTailSampling checks the production sampling mode: a
// clean session retains only the top-k latency reservoir, while a lossy
// session additionally keeps every anomalous window's full tree.
func TestStreamSpanTailSampling(t *testing.T) {
	clean := NewSpanTracer(SpanTracerConfig{Label: "record 100", TopK: 4})
	rep, err := RunStream(StreamConfig{
		RecordID: "100",
		Seconds:  30,
		Params:   Params{Seed: 0x7A4, M: MForCR(50, WindowSize)},
		Mode:     ModeNEON,
		Spans:    clean,
	})
	if err != nil {
		t.Fatal(err)
	}
	kept := clean.Retained()
	unflagged := 0
	for _, w := range kept {
		if w.Flags == 0 {
			unflagged++
		}
	}
	if unflagged == 0 || unflagged > 4 {
		t.Errorf("retained %d unflagged traces, want 1..4 (top-k reservoir)", unflagged)
	}
	if len(kept) >= rep.Decoded {
		t.Errorf("tail sampling retained %d of %d windows; expected a strict subset", len(kept), rep.Decoded)
	}

	lossy := NewSpanTracer(SpanTracerConfig{Label: "record 100", TopK: 4})
	cfg := StreamConfig{
		RecordID: "100",
		Seconds:  60,
		Params:   Params{Seed: 0x7A4, M: MForCR(50, WindowSize)},
		Mode:     ModeNEON,
		Spans:    lossy,
	}
	cfg.Link = DefaultLinkConfig()
	cfg.Link.Burst = &BurstConfig{PGoodBad: 0.06, PBadGood: 0.50}
	cfg.Link.Seed = 0xC4A7
	cfg.Transport = TransportConfig{NACK: true}
	if _, err := RunStream(cfg); err != nil {
		t.Fatal(err)
	}
	anomalous := 0
	for _, w := range lossy.Retained() {
		if w.Flags != 0 {
			anomalous++
		}
	}
	if anomalous == 0 {
		t.Error("lossy session retained no anomalous traces")
	}
}
