package csecg

import (
	"testing"
	"time"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	params := Params{Seed: 42, M: MForCR(50, WindowSize)}
	enc, err := NewEncoder(params)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder32(params)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecordByID("100")
	if err != nil {
		t.Fatal(err)
	}
	samples, err := rec.Channel256(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o+WindowSize <= len(samples); o += WindowSize {
		win := samples[o : o+WindowSize]
		pkt, err := enc.EncodeWindow(win)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := MarshalPacket(pkt)
		if err != nil {
			t.Fatal(err)
		}
		rx, n, err := UnmarshalPacket(blob)
		if err != nil || n != len(blob) {
			t.Fatalf("unmarshal: %v (n=%d)", err, n)
		}
		out, err := dec.DecodePacket(rx)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Samples) != WindowSize {
			t.Fatalf("reconstruction length %d", len(out.Samples))
		}
	}
}

func TestDatabaseSurface(t *testing.T) {
	if got := len(Database()); got != 48 {
		t.Errorf("Database() returned %d records", got)
	}
	if _, err := RecordByID("nope"); err == nil {
		t.Error("bad ID accepted")
	}
}

func TestMetricsSurface(t *testing.T) {
	if CR(100, 50) != 50 {
		t.Error("CR re-export broken")
	}
	if MForCR(50, 512) != 256 {
		t.Error("MForCR re-export broken")
	}
	if got := SNR(10); got < 19.999 || got > 20.001 {
		t.Errorf("SNR re-export: %v", got)
	}
	if _, err := PRD([]float64{1, 2}, []float64{1, 2}); err != nil {
		t.Error("PRD re-export broken")
	}
	if _, err := PRDN([]float64{1, 2}, []float64{1, 2}); err != nil {
		t.Error("PRDN re-export broken")
	}
}

func TestTrainCodebookSurface(t *testing.T) {
	cb, err := TrainCodebook(DiffHistogramModel(25))
	if err != nil {
		t.Fatal(err)
	}
	if cb.NumSymbols() != 512 {
		t.Errorf("codebook symbols %d", cb.NumSymbols())
	}
	params := Params{Seed: 1, Codebook: cb}
	if _, err := NewEncoder(params); err != nil {
		t.Errorf("custom codebook rejected: %v", err)
	}
}

func TestRunStreamFullSession(t *testing.T) {
	rep, err := RunStream(StreamConfig{
		RecordID: "100",
		Seconds:  30,
		Params:   Params{Seed: 9, M: MForCR(50, WindowSize)},
		Mode:     ModeNEON,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Windows != 15 {
		t.Errorf("windows %d, want 15", rep.Windows)
	}
	if rep.Lost != 0 {
		t.Errorf("clean link lost %d packets", rep.Lost)
	}
	if rep.MeanPRDN <= 0 || rep.MeanPRDN > 15 {
		t.Errorf("mean PRDN %v out of expected range", rep.MeanPRDN)
	}
	if rep.WireCR < 55 {
		t.Errorf("wire CR %v, want > 55", rep.WireCR)
	}
	if rep.MoteCPU <= 0 || rep.MoteCPU >= 0.05 {
		t.Errorf("mote CPU %v, want (0, 5%%)", rep.MoteCPU)
	}
	if rep.CoordinatorCPU <= 0.02 || rep.CoordinatorCPU >= 0.5 {
		t.Errorf("coordinator CPU %v, want tens of percent", rep.CoordinatorCPU)
	}
	if rep.Extension < 0.05 || rep.Extension > 0.25 {
		t.Errorf("lifetime extension %v, want ≈0.13", rep.Extension)
	}
	if rep.LifetimeCS <= rep.LifetimeRaw {
		t.Error("CS lifetime not longer than raw streaming")
	}
	if rep.MeanDecodeTime <= 0 || rep.MeanDecodeTime > time.Second {
		t.Errorf("mean decode time %v outside (0, 1 s]", rep.MeanDecodeTime)
	}
	if rep.Display == nil || rep.Display.Underruns != 0 {
		t.Errorf("display sim unhappy: %+v", rep.Display)
	}
}

func TestRunStreamLossyLink(t *testing.T) {
	cfg := StreamConfig{
		RecordID: "205",
		Seconds:  120,
		Params:   Params{Seed: 3, KeyFrameInterval: 4},
		Mode:     ModeVFP,
	}
	cfg.Link = DefaultLinkConfig()
	cfg.Link.DropProb = 0.25
	cfg.Link.Seed = 5
	rep, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost == 0 {
		t.Error("lossy link lost nothing over 60 packets at 25% drop")
	}
	if rep.Windows != 60 {
		t.Errorf("windows %d, want 60", rep.Windows)
	}
}

// TestNackRecoveryBeatsKeyFrameWait is the acceptance bar for the
// fault-tolerant transport: on a bursty channel with ≥5% mean loss and
// sparse scheduled key frames, NACK-driven resync must recover at least
// twice the decoded windows of the wait-for-key-frame baseline.
func TestNackRecoveryBeatsKeyFrameWait(t *testing.T) {
	burst := &BurstConfig{PGoodBad: 0.06, PBadGood: 0.5}
	if sl := burst.StationaryLoss(); sl < 0.05 {
		t.Fatalf("stationary loss %.3f below the 5%% requirement", sl)
	}
	base := StreamConfig{
		RecordID: "119",
		Seconds:  60,
		Params:   Params{Seed: 11, M: MForCR(50, WindowSize)}, // KeyFrameInterval default 64
		Mode:     ModeVFP,
	}
	base.Link = DefaultLinkConfig()
	base.Link.Burst = burst
	base.Link.Seed = 0xB02
	baseline, err := RunStream(base)
	if err != nil {
		t.Fatal(err)
	}
	nackCfg := base
	nackCfg.Transport = TransportConfig{NACK: true}
	nacked, err := RunStream(nackCfg)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Lost == 0 || nacked.Lost == 0 {
		t.Fatalf("burst channel dropped nothing (baseline %d, nack %d)", baseline.Lost, nacked.Lost)
	}
	if baseline.Decoded >= baseline.Windows {
		t.Fatalf("baseline decoded everything (%d/%d); channel not stressful enough",
			baseline.Decoded, baseline.Windows)
	}
	if nacked.Decoded < 2*baseline.Decoded {
		t.Errorf("NACK decoded %d of %d windows, baseline %d — want ≥ 2× recovery",
			nacked.Decoded, nacked.Windows, baseline.Decoded)
	}
	if nacked.Transport.NacksSent == 0 || nacked.Retransmits == 0 {
		t.Errorf("no NACK traffic recorded: %+v", nacked.Transport)
	}
	if nacked.RetransmitAirtime <= 0 {
		t.Error("retransmissions consumed no airtime")
	}
	if nacked.AirtimePerWindow <= baseline.AirtimePerWindow {
		t.Error("retransmit airtime not charged to the energy model")
	}
	if baseline.Transport.Gaps == 0 || baseline.Transport.LongestOutage == 0 {
		t.Errorf("baseline gap accounting empty: %+v", baseline.Transport)
	}
}

func TestRunStreamErrors(t *testing.T) {
	if _, err := RunStream(StreamConfig{RecordID: "999"}); err == nil {
		t.Error("unknown record accepted")
	}
	if _, err := RunStream(StreamConfig{Seconds: 1}); err == nil {
		t.Error("sub-window session accepted")
	}
}

func TestMoteSurface(t *testing.T) {
	m, err := NewMote(Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lat := m.MeasurementLatency(); lat <= 0 {
		t.Error("zero measurement latency")
	}
	d, err := NewRealTimeDecoder(Params{Seed: 1}, ModeVFP)
	if err != nil {
		t.Fatal(err)
	}
	if d.IterationBudget() <= 0 {
		t.Error("zero iteration budget")
	}
	b := DefaultEnergyBudget()
	if _, err := b.Lifetime(EnergyLoad{}); err != nil {
		t.Error(err)
	}
}

func TestSoakLongLossySession(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// 10 minutes of a mixed-arrhythmia record over a 2%-lossy link: the
	// decoder's integer measurement state must not drift (quality stays
	// flat), losses must stay recoverable, and the viewer must never
	// starve outside loss gaps.
	cfg := StreamConfig{
		RecordID: "201",
		Seconds:  600,
		Params:   Params{Seed: 0x50AC, M: MForCR(50, WindowSize), KeyFrameInterval: 16},
		Mode:     ModeNEON,
	}
	cfg.Link = DefaultLinkConfig()
	cfg.Link.DropProb = 0.02
	cfg.Link.Seed = 99
	rep, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Windows != 300 {
		t.Fatalf("windows %d, want 300", rep.Windows)
	}
	if rep.Lost == 0 || rep.Lost > 30 {
		t.Errorf("lost %d packets, expected ≈6 at 2%%", rep.Lost)
	}
	if rep.MeanPRDN <= 0 || rep.MeanPRDN > 15 {
		t.Errorf("mean PRDN %.2f drifted out of range", rep.MeanPRDN)
	}
	if rep.WorstPRDN > 60 {
		t.Errorf("worst PRDN %.2f indicates state corruption", rep.WorstPRDN)
	}
	if rep.MoteCPU >= 0.05 {
		t.Errorf("mote CPU %.3f above the 5%% budget over the long run", rep.MoteCPU)
	}
}
