// Diagnostic: clinical validation of the compression. Streams
// ectopy-rich records through the pipeline at several compression
// ratios and scores QRS detection (Pan-Tompkins) on the reconstruction
// against the generator's ground-truth beats — answering the question a
// cardiologist would ask: "do I still see every beat, and nothing
// extra?"
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"csecg"
)

func main() {
	var (
		records = flag.String("records", "106,208,233", "ectopy-rich record IDs")
		seconds = flag.Float64("seconds", 60, "seconds per record")
		crs     = flag.String("crs", "30,50,70,85", "compression ratios")
	)
	flag.Parse()

	det, err := csecg.NewQRSDetector(csecg.FsMote)
	if err != nil {
		log.Fatal(err)
	}
	const tol = 13 // ±50 ms at 256 Hz

	fmt.Printf("%-8s %-6s %8s %8s %8s %8s %9s\n",
		"record", "CR", "beats", "Se", "PPV", "F1", "PRDN")
	for _, id := range strings.Split(*records, ",") {
		id = strings.TrimSpace(id)
		rec, err := csecg.RecordByID(id)
		if err != nil {
			log.Fatal(err)
		}
		sig, err := rec.Synthesize(*seconds)
		if err != nil {
			log.Fatal(err)
		}
		// Ground-truth beats on the 256 Hz grid.
		var ref []int
		for _, a := range sig.Ann {
			ref = append(ref, int(a.Time*csecg.FsMote+0.5))
		}
		adc, err := rec.Channel256(*seconds, 0)
		if err != nil {
			log.Fatal(err)
		}
		for _, crs := range strings.Split(*crs, ",") {
			var cr float64
			if _, err := fmt.Sscanf(strings.TrimSpace(crs), "%f", &cr); err != nil {
				log.Fatalf("bad CR %q: %v", crs, err)
			}
			params := csecg.Params{Seed: 0xD1, M: csecg.MForCR(cr, csecg.WindowSize)}
			enc, err := csecg.NewEncoder(params)
			if err != nil {
				log.Fatal(err)
			}
			dec, err := csecg.NewDecoder32(params)
			if err != nil {
				log.Fatal(err)
			}
			var recon, orig []float64
			for o := 0; o+csecg.WindowSize <= len(adc); o += csecg.WindowSize {
				win := adc[o : o+csecg.WindowSize]
				pkt, err := enc.EncodeWindow(win)
				if err != nil {
					log.Fatal(err)
				}
				out, err := dec.DecodePacket(pkt)
				if err != nil {
					log.Fatal(err)
				}
				for i := range win {
					orig = append(orig, float64(win[i]))
					recon = append(recon, float64(out.Samples[i]))
				}
			}
			var refClipped []int
			for _, r := range ref {
				if r < len(recon) {
					refClipped = append(refClipped, r)
				}
			}
			st := csecg.MatchBeats(det.Detect(recon), refClipped, tol)
			prdn, err := csecg.PRDN(orig, recon)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %-6.0f %8d %8.3f %8.3f %8.3f %8.2f%%\n",
				id, cr, len(refClipped), st.Sensitivity(), st.PPV(), st.F1(), prdn)
		}
	}
	fmt.Println("\nSe = sensitivity (missed beats hurt), PPV = positive predictive value (phantom beats hurt)")
}
