// Quickstart: compress one 2-second ECG window with the CS encoder,
// ship it as a wire packet, reconstruct it with the real-time float32
// decoder, and print the recovery quality.
package main

import (
	"fmt"
	"log"

	"csecg"
)

func main() {
	// Both sides agree on the pipeline parameters out of band: the
	// sensing-matrix seed and the measurement count (here CR = 50%).
	params := csecg.Params{
		Seed: 42,
		M:    csecg.MForCR(50, csecg.WindowSize),
	}

	enc, err := csecg.NewEncoder(params)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := csecg.NewDecoder32(params)
	if err != nil {
		log.Fatal(err)
	}

	// Grab a few seconds of record 100 from the substitute MIT-BIH
	// database, resampled to the mote's 256 Hz input rate.
	rec, err := csecg.RecordByID("100")
	if err != nil {
		log.Fatal(err)
	}
	samples, err := rec.Channel256(8, 0)
	if err != nil {
		log.Fatal(err)
	}

	for w := 0; w+csecg.WindowSize <= len(samples); w += csecg.WindowSize {
		window := samples[w : w+csecg.WindowSize]

		// Mote side: integer-only compression into a packet.
		pkt, err := enc.EncodeWindow(window)
		if err != nil {
			log.Fatal(err)
		}
		wire, err := csecg.MarshalPacket(pkt)
		if err != nil {
			log.Fatal(err)
		}

		// Coordinator side: parse and FISTA-reconstruct.
		rx, _, err := csecg.UnmarshalPacket(wire)
		if err != nil {
			log.Fatal(err)
		}
		out, err := dec.DecodePacket(rx)
		if err != nil {
			log.Fatal(err)
		}

		orig := make([]float64, len(window))
		reco := make([]float64, len(window))
		for i := range window {
			orig[i] = float64(window[i])
			reco[i] = float64(out.Samples[i])
		}
		prdn, err := csecg.PRDN(orig, reco)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("window %d: %4d B on the wire (raw %4d B), %4d FISTA iterations, PRDN %5.2f%% (SNR %4.1f dB)\n",
			pkt.Seq, len(wire), csecg.WindowSize*12/8, out.Iterations, prdn, csecg.SNR(prdn))
	}
}
