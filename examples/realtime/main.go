// Realtime: a live producer-consumer monitor mirroring the paper's
// iPhone application structure with goroutines.
//
// Three goroutines communicate over channels exactly like the paper's
// threads communicate over the shared buffer:
//
//   - the mote goroutine senses, compresses and "transmits" a packet
//     every window period;
//   - the decoder goroutine receives packets, runs the real-time FISTA
//     reconstruction, and appends samples to the display buffer;
//   - the display goroutine wakes on a ticker and drains the buffer at
//     the real-time rate, rendering an ASCII trace strip per window.
//
// Wall-clock time is compressed (a "2-second" window period is played as
// 100 ms) so the demo finishes in seconds while preserving the relative
// rates of the three actors.
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"csecg"
)

const (
	timeCompression = 20 // play 2 s of signal per 100 ms of wall clock
	sessionSeconds  = 30 // signal time to stream
	displayCols     = 64 // terminal width of the trace strip
)

func main() {
	params := csecg.Params{Seed: 77, M: csecg.MForCR(50, csecg.WindowSize)}
	enc, err := csecg.NewEncoder(params)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := csecg.NewRealTimeDecoder(params, csecg.ModeNEON)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := csecg.RecordByID("119") // trigeminy-like PVCs: visible ectopy
	if err != nil {
		log.Fatal(err)
	}
	samples, err := rec.Channel256(sessionSeconds, 0)
	if err != nil {
		log.Fatal(err)
	}

	packets := make(chan *csecg.Packet, 3)
	displayBuf := newRing(6 * csecg.FsMote) // the paper's 6-second buffer

	var wg sync.WaitGroup
	windowPeriod := 2 * time.Second / timeCompression

	// Mote: one packet per window period.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(packets)
		ticker := time.NewTicker(windowPeriod)
		defer ticker.Stop()
		for o := 0; o+csecg.WindowSize <= len(samples); o += csecg.WindowSize {
			pkt, err := enc.EncodeWindow(samples[o : o+csecg.WindowSize])
			if err != nil {
				log.Fatal(err)
			}
			packets <- pkt
			<-ticker.C
		}
	}()

	// Decoder: real-time reconstruction into the display ring.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for pkt := range packets {
			res, err := dec.Decode(pkt)
			if err != nil {
				log.Printf("decoder: %v", err)
				continue
			}
			displayBuf.push(res.Samples)
			fmt.Printf("packet %2d: %4d iterations, modeled decode %5.0f ms, CPU %4.1f%%\n",
				pkt.Seq, res.Iterations, res.ModeledTime.Seconds()*1000, res.CPUUsage*100)
		}
		displayBuf.close()
	}()

	// Display: drain at the real-time rate, draw a strip per window.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			window, ok := displayBuf.pop(csecg.WindowSize)
			if !ok {
				return
			}
			fmt.Println(renderStrip(window, displayCols))
		}
	}()

	wg.Wait()
	fmt.Printf("\nsession done: coordinator CPU %.1f%% (modeled), iteration budget %d\n",
		dec.AverageCPUUsage()*100, dec.IterationBudget())
}

// renderStrip draws a window as a one-line ASCII trace: column height
// picked from the max |sample| in each bucket.
func renderStrip(window []int16, cols int) string {
	glyphs := []rune("_.-~^|")
	per := len(window) / cols
	var b strings.Builder
	b.WriteByte('[')
	for c := 0; c < cols; c++ {
		var peak int
		for i := c * per; i < (c+1)*per && i < len(window); i++ {
			v := int(window[i]) - 1024
			if v < 0 {
				v = -v
			}
			if v > peak {
				peak = v
			}
		}
		idx := peak * (len(glyphs) - 1) / 300
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		b.WriteRune(glyphs[idx])
	}
	b.WriteByte(']')
	return b.String()
}

// ring is a bounded sample FIFO shared between decoder and display.
type ring struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []int16
	closed bool
	cap    int
}

func newRing(capacity int) *ring {
	r := &ring{cap: capacity}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// push appends samples, dropping the oldest if the ring would overflow
// (as the paper's fixed 6-second buffer does).
func (r *ring) push(samples []int16) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = append(r.buf, samples...)
	if over := len(r.buf) - r.cap; over > 0 {
		r.buf = r.buf[over:]
	}
	r.cond.Broadcast()
}

// pop blocks until n samples (or closure) are available.
func (r *ring) pop(n int) ([]int16, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.buf) < n && !r.closed {
		r.cond.Wait()
	}
	if len(r.buf) < n {
		return nil, false
	}
	out := make([]int16, n)
	copy(out, r.buf[:n])
	r.buf = r.buf[n:]
	return out, true
}

func (r *ring) close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.cond.Broadcast()
}
