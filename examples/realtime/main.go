// Realtime: a live producer-consumer monitor mirroring the paper's
// iPhone application structure with goroutines — now over a faulty
// radio.
//
// Three goroutines communicate over channels exactly like the paper's
// threads communicate over the shared buffer:
//
//   - the mote goroutine senses, compresses and transmits a packet every
//     window period through a Gilbert–Elliott burst-loss link, keeps the
//     last few packets in its bounded retransmit ring, and serves the
//     coordinator's NACKs;
//   - the decoder goroutine ingests whatever the channel delivers
//     (dropped, duplicated, reordered frames included) through the
//     fault-tolerant Receiver, runs the real-time FISTA reconstruction
//     on every released window, and NACKs sequence gaps over the uplink;
//   - the display goroutine wakes on a ticker and drains the buffer at
//     the real-time rate, rendering an ASCII trace strip per window.
//
// Wall-clock time is compressed (a "2-second" window period is played as
// 100 ms) so the demo finishes in seconds while preserving the relative
// rates of the three actors.
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"csecg"
)

const (
	timeCompression = 20 // play 2 s of signal per 100 ms of wall clock
	sessionSeconds  = 30 // signal time to stream
	displayCols     = 64 // terminal width of the trace strip
)

func main() {
	params := csecg.Params{Seed: 77, M: csecg.MForCR(50, csecg.WindowSize)}
	m, err := csecg.NewMote(params)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.EnableRetransmitBuffer(4); err != nil {
		log.Fatal(err)
	}
	dec, err := csecg.NewRealTimeDecoder(params, csecg.ModeNEON)
	if err != nil {
		log.Fatal(err)
	}
	rx := csecg.NewReceiver(dec, csecg.TransportConfig{NACK: true})
	rec, err := csecg.RecordByID("119") // trigeminy-like PVCs: visible ectopy
	if err != nil {
		log.Fatal(err)
	}
	samples, err := rec.Channel256(sessionSeconds, 0)
	if err != nil {
		log.Fatal(err)
	}

	// The downlink drops in bursts (~11% mean loss) and occasionally
	// reorders or duplicates; the uplink shares the channel quality.
	linkCfg := csecg.DefaultLinkConfig()
	linkCfg.Burst = &csecg.BurstConfig{PGoodBad: 0.06, PBadGood: 0.5}
	linkCfg.ReorderProb = 0.05
	linkCfg.DupProb = 0.03
	linkCfg.Seed = 0xEC6
	down, err := csecg.NewLink(linkCfg)
	if err != nil {
		log.Fatal(err)
	}
	upCfg := linkCfg
	upCfg.Seed = 0x0EC7
	up, err := csecg.NewLink(upCfg)
	if err != nil {
		log.Fatal(err)
	}

	// packets carries delivered downlink frames; a nil marks the end of
	// one window period (the receiver's slot clock). control carries
	// NACK/key-request packets that survived the uplink.
	packets := make(chan *csecg.Packet, 8)
	control := make(chan *csecg.Packet, 8)
	displayBuf := newRing(6 * csecg.FsMote) // the paper's 6-second buffer

	var wg sync.WaitGroup
	windowPeriod := 2 * time.Second / timeCompression

	// Mote: serve pending control traffic, then one packet per window.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(packets)
		send := func(pkt *csecg.Packet) {
			delivered, _, err := down.TransmitPacketMulti(pkt)
			if err != nil {
				log.Fatal(err)
			}
			for _, p := range delivered {
				packets <- p
			}
		}
		ticker := time.NewTicker(windowPeriod)
		defer ticker.Stop()
		for o := 0; o+csecg.WindowSize <= len(samples); o += csecg.WindowSize {
			for drained := false; !drained; {
				select {
				case c := <-control:
					switch c.Kind {
					case csecg.KindNack:
						first, count, err := csecg.NackRange(c)
						if err != nil {
							log.Fatal(err)
						}
						for i := 0; i < count; i++ {
							if pkt, ok := m.Retransmit(first + uint32(i)); ok {
								send(pkt)
							}
						}
					case csecg.KindKeyRequest:
						m.RequestKeyFrame()
					}
				default:
					drained = true
				}
			}
			mr, err := m.EncodeWindow(samples[o : o+csecg.WindowSize])
			if err != nil {
				log.Fatal(err)
			}
			send(mr.Packet)
			packets <- nil // end of this window period
			<-ticker.C
		}
	}()

	// Decoder: fault-tolerant receive, real-time reconstruction into the
	// display ring, NACKs back over the uplink.
	wg.Add(1)
	go func() {
		defer wg.Done()
		show := func(out []csecg.TransportDecoded) {
			for _, d := range out {
				displayBuf.push(d.Res.Samples)
				tag := ""
				if d.Res.Resynced {
					tag = "  [resynced]"
				}
				fmt.Printf("window %2d: %4d iterations, modeled decode %5.0f ms, CPU %4.1f%%%s\n",
					d.Seq, d.Res.Iterations, d.Res.ModeledTime.Seconds()*1000, d.Res.CPUUsage*100, tag)
			}
		}
		for pkt := range packets {
			if pkt != nil {
				out, err := rx.Push(pkt)
				if err != nil {
					log.Fatal(err)
				}
				show(out)
				continue
			}
			ctrl, late := rx.EndSlot()
			show(late)
			for _, c := range ctrl {
				delivered, _, err := up.TransmitPacket(c)
				if err != nil {
					log.Fatal(err)
				}
				if delivered == nil {
					continue // the uplink ate the request; backoff retries
				}
				select {
				case control <- delivered:
				default: // mote busy: treated as one more lost request
				}
			}
		}
		show(rx.Close())
		displayBuf.close()
	}()

	// Display: drain at the real-time rate, draw a strip per window.
	wg.Add(1)
	//csecg:leakok terminated by displayBuf.close() waking the cond-based ring
	go func() {
		defer wg.Done()
		for {
			window, ok := displayBuf.pop(csecg.WindowSize)
			if !ok {
				return
			}
			fmt.Println(renderStrip(window, displayCols))
		}
	}()

	wg.Wait()
	st := rx.Stats()
	ls := down.Stats()
	fmt.Printf("\nsession done: coordinator CPU %.1f%% (modeled), iteration budget %d\n",
		dec.AverageCPUUsage()*100, dec.IterationBudget())
	fmt.Printf("downlink: %d sent, %d dropped, %d corrupted, %d reordered, %d duplicated (%d burst-state slots)\n",
		ls.Sent, ls.Dropped, ls.Corrupted, ls.Reordered, ls.Duplicated, ls.BadSlots)
	fmt.Printf("transport: %d/%d windows decoded, %d gaps (longest outage %d, mean recovery %.1f win), %d abandoned\n",
		st.Decoded, st.Received, st.Gaps, st.LongestOutage, st.MeanRecovery(), st.Abandoned)
	fmt.Printf("resync: %d NACKs, %d key requests, %d retransmits served, %d resyncs\n",
		st.NacksSent, st.KeyRequestsSent, m.Retransmits(), st.Resyncs)
}

// renderStrip draws a window as a one-line ASCII trace: column height
// picked from the max |sample| in each bucket.
func renderStrip(window []int16, cols int) string {
	glyphs := []rune("_.-~^|")
	per := len(window) / cols
	var b strings.Builder
	b.WriteByte('[')
	for c := 0; c < cols; c++ {
		var peak int
		for i := c * per; i < (c+1)*per && i < len(window); i++ {
			v := int(window[i]) - 1024
			if v < 0 {
				v = -v
			}
			if v > peak {
				peak = v
			}
		}
		idx := peak * (len(glyphs) - 1) / 300
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		b.WriteRune(glyphs[idx])
	}
	b.WriteByte(']')
	return b.String()
}

// ring is a bounded sample FIFO shared between decoder and display.
type ring struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []int16
	closed bool
	cap    int
}

func newRing(capacity int) *ring {
	r := &ring{cap: capacity}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// push appends samples, dropping the oldest if the ring would overflow
// (as the paper's fixed 6-second buffer does).
func (r *ring) push(samples []int16) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = append(r.buf, samples...)
	if over := len(r.buf) - r.cap; over > 0 {
		r.buf = r.buf[over:]
	}
	r.cond.Broadcast()
}

// pop blocks until n samples (or closure) are available.
func (r *ring) pop(n int) ([]int16, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.buf) < n && !r.closed {
		r.cond.Wait()
	}
	if len(r.buf) < n {
		return nil, false
	}
	out := make([]int16, n)
	copy(out, r.buf[:n])
	r.buf = r.buf[n:]
	return out, true
}

func (r *ring) close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.cond.Broadcast()
}
