// Analogcs: the paper's "ultimate goal" demonstrated. Section II-A
// defers "analog CS", where compression happens in the sensor read-out
// electronics before the ADC; this example simulates that front end — a
// random-modulation pre-integrator (RMPI) with realistic non-idealities
// — and shows that (a) an ideal analog front end matches digital CS and
// (b) a leaky, noisy, coarsely-quantized one recovers almost fully once
// the decoder is calibrated with the measured RC constant.
package main

import (
	"fmt"
	"log"

	"csecg"
)

func main() {
	const (
		n  = csecg.WindowSize
		cr = 50.0
	)
	m := csecg.MForCR(cr, n)

	// A 2-second ECG window in zero-centered ADC units.
	rec, err := csecg.RecordByID("100")
	if err != nil {
		log.Fatal(err)
	}
	adc, err := rec.Channel256(6, 0)
	if err != nil {
		log.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(adc[i+n]) - 1024
	}

	snrOf := func(fe *csecg.AnalogFrontEnd, y []float64, calibrated bool) float64 {
		xhat, err := fe.Recover(y, calibrated)
		if err != nil {
			log.Fatal(err)
		}
		prdn, err := csecg.PRDN(x, xhat)
		if err != nil {
			log.Fatal(err)
		}
		return csecg.SNR(prdn)
	}

	fmt.Printf("analog CS at CR %.0f%% (M = %d integrating branches):\n\n", cr, m)

	// 1. Ideal front end: chipping waveforms and perfect integrators.
	ideal, err := csecg.NewAnalogFrontEnd(csecg.AnalogConfig{
		M: m, N: n, Oversample: 8, ChipSeed: 7, WindowSeconds: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	analog := upsample(x, 8) // the "continuous" signal at the chip rate
	y, err := ideal.Measure(analog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ideal RMPI:                       %5.1f dB\n", snrOf(ideal, y, false))

	// 2. Realistic front end: integrator leakage, input noise, 12-bit
	// read-out ADC.
	realistic, err := csecg.NewAnalogFrontEnd(csecg.AnalogConfig{
		M: m, N: n, Oversample: 8, ChipSeed: 7, WindowSeconds: 2,
		LeakagePerSecond: 0.8, NoiseRMS: 8, NoiseSeed: 3,
		ADCBits: 12, FullScale: 4096,
	})
	if err != nil {
		log.Fatal(err)
	}
	y, err = realistic.Measure(analog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  leaky+noisy, naive decoder:       %5.1f dB\n", snrOf(realistic, y, false))

	// 3. Same hardware, calibrated decoder: the recovery operator folds
	// in the measured integrator leakage.
	fmt.Printf("  leaky+noisy, calibrated decoder:  %5.1f dB\n", snrOf(realistic, y, true))

	fmt.Println("\ncalibrating the decoder against the front end's RC constant recovers")
	fmt.Println("nearly all of the quality the non-idealities destroy — analog CS is")
	fmt.Println("viable if (and only if) the decoder models the electronics.")
}

func upsample(x []float64, factor int) []float64 {
	out := make([]float64, len(x)*factor)
	for i, v := range x {
		for k := 0; k < factor; k++ {
			out[i*factor+k] = v
		}
	}
	return out
}
