// Sweep: per-record compression-quality study. Runs the full pipeline
// over a set of substitute-database records at several compression
// ratios and prints a per-record table with the diagnostic-quality
// classification — the workflow a clinician-facing evaluation would run
// before choosing an operating point.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"csecg"
)

func main() {
	var (
		records = flag.String("records", "100,106,119,200,208,232", "record IDs")
		seconds = flag.Float64("seconds", 30, "seconds per record")
		crs     = flag.String("crs", "30,50,70", "compression ratios to sweep")
	)
	flag.Parse()

	var crList []float64
	for _, s := range strings.Split(*crs, ",") {
		var cr float64
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%f", &cr); err != nil {
			log.Fatalf("bad CR %q: %v", s, err)
		}
		crList = append(crList, cr)
	}

	fmt.Printf("%-8s %-28s", "record", "rhythm")
	for _, cr := range crList {
		fmt.Printf("  CR%.0f: PRDN / quality   ", cr)
	}
	fmt.Println()

	for _, id := range strings.Split(*records, ",") {
		id = strings.TrimSpace(id)
		rec, err := csecg.RecordByID(id)
		if err != nil {
			log.Fatal(err)
		}
		desc := rec.Description
		if len(desc) > 26 {
			desc = desc[:26]
		}
		fmt.Printf("%-8s %-28s", id, desc)
		for _, cr := range crList {
			rep, err := csecg.RunStream(csecg.StreamConfig{
				RecordID: id,
				Seconds:  *seconds,
				Params:   csecg.Params{Seed: 0x5EE9, M: csecg.MForCR(cr, csecg.WindowSize)},
				Mode:     csecg.ModeNEON,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %5.2f%% / %-11s", rep.MeanPRDN, quality(rep.MeanPRDN))
		}
		fmt.Println()
	}
	fmt.Println("\nquality bands (Zigel): very good < 2%, good < 9%, degraded otherwise (mean-removed PRD)")
}

func quality(prdn float64) string {
	switch {
	case prdn < 2:
		return "very good"
	case prdn < 9:
		return "good"
	default:
		return "degraded"
	}
}
