// Holter: 24-hour ambulatory monitoring study. Streams a long session
// through the full platform model (instrumented mote → Bluetooth link →
// real-time coordinator) and reports what a Holter-replacement product
// would care about: diagnostic quality, radio airtime, battery lifetime
// and the gain over streaming raw samples.
//
// The signal model is stationary per record, so the energy/quality
// figures measured over a few minutes extrapolate to the 24 h session;
// the example measures 5 minutes and scales the storage/energy totals.
package main

import (
	"fmt"
	"log"

	"csecg"
)

func main() {
	const (
		measured = 300.0       // seconds actually simulated
		session  = 24 * 3600.0 // seconds reported
	)
	for _, cr := range []float64{50, 70} {
		rep, err := csecg.RunStream(csecg.StreamConfig{
			RecordID: "106", // PVC-rich record: the hard case for compression
			Seconds:  measured,
			Params:   csecg.Params{Seed: 7, M: csecg.MForCR(cr, csecg.WindowSize)},
			Mode:     csecg.ModeNEON,
		})
		if err != nil {
			log.Fatal(err)
		}
		scale := session / measured
		rawBytes := float64(rep.Windows) * csecg.WindowSize * 12 / 8 * scale
		wireBytes := rawBytes * (1 - rep.WireCR/100)

		fmt.Printf("=== 24 h Holter session, record 106, CS CR %.0f%% ===\n", cr)
		fmt.Printf("  diagnostic quality:   mean PRDN %.2f%% (worst %.2f%%) — SNR %.1f dB\n",
			rep.MeanPRDN, rep.WorstPRDN, csecg.SNR(rep.MeanPRDN))
		fmt.Printf("  data volume:          %.1f MB raw -> %.1f MB on air (wire CR %.1f%%)\n",
			rawBytes/1e6, wireBytes/1e6, rep.WireCR)
		fmt.Printf("  radio airtime:        %.1f min over 24 h\n",
			rep.AirtimePerWindow.Seconds()*float64(rep.Windows)*scale/60)
		fmt.Printf("  mote CPU:             %.2f%%   coordinator CPU: %.1f%%\n",
			rep.MoteCPU*100, rep.CoordinatorCPU*100)
		fmt.Printf("  node lifetime:        %.1f h compressed vs %.1f h raw (+%.1f%%)\n",
			rep.LifetimeCS.Hours(), rep.LifetimeRaw.Hours(), rep.Extension*100)
		fmt.Printf("  -> a 450 mAh cell covers %.1f days of continuous monitoring\n\n",
			rep.LifetimeCS.Hours()/24)
	}
	printClinicalReport()
}

// printClinicalReport decodes a session and prints the Holter analytics
// computed on the *reconstruction*, compared against the same analytics
// on the original signal — the report-level fidelity a clinician cares
// about.
func printClinicalReport() {
	const cr, seconds = 50.0, 300.0
	params := csecg.Params{Seed: 0x601, M: csecg.MForCR(cr, csecg.WindowSize)}
	enc, err := csecg.NewEncoder(params)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := csecg.NewDecoder32(params)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := csecg.RecordByID("106")
	if err != nil {
		log.Fatal(err)
	}
	adc, err := rec.Channel256(seconds, 0)
	if err != nil {
		log.Fatal(err)
	}
	var orig, recon []float64
	for o := 0; o+csecg.WindowSize <= len(adc); o += csecg.WindowSize {
		win := adc[o : o+csecg.WindowSize]
		pkt, err := enc.EncodeWindow(win)
		if err != nil {
			log.Fatal(err)
		}
		out, err := dec.DecodePacket(pkt)
		if err != nil {
			log.Fatal(err)
		}
		for i := range win {
			orig = append(orig, float64(win[i]))
			recon = append(recon, float64(out.Samples[i]))
		}
	}
	det, err := csecg.NewQRSDetector(csecg.FsMote)
	if err != nil {
		log.Fatal(err)
	}
	toBeats := func(x []float64) []csecg.HolterBeat {
		var beats []csecg.HolterBeat
		for _, b := range det.DetectBeats(x) {
			beats = append(beats, csecg.HolterBeat{
				Time:        float64(b.Sample) / csecg.FsMote,
				Ventricular: b.Ventricular,
			})
		}
		return beats
	}
	refRep, err := csecg.AnalyzeHolter(toBeats(orig))
	if err != nil {
		log.Fatal(err)
	}
	gotRep, err := csecg.AnalyzeHolter(toBeats(recon))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== Holter analytics, record 106, 5 min @ CR %.0f%% (reconstruction vs original) ===\n", cr)
	row := func(name string, ref, got float64, unit string) {
		fmt.Printf("  %-22s %8.1f %-6s (original %.1f)\n", name, got, unit, ref)
	}
	row("mean heart rate", refRep.MeanHR, gotRep.MeanHR, "bpm")
	row("HR range min", refRep.MinHR, gotRep.MinHR, "bpm")
	row("HR range max", refRep.MaxHR, gotRep.MaxHR, "bpm")
	row("SDNN", refRep.SDNN, gotRep.SDNN, "ms")
	row("RMSSD", refRep.RMSSD, gotRep.RMSSD, "ms")
	row("PVC burden", refRep.VentricularPerHour, gotRep.VentricularPerHour, "/h")
	fmt.Printf("  %-22s %8d        (original %d)\n", "pauses > 2 s", len(gotRep.Pauses), len(refRep.Pauses))
	fmt.Printf("  report-level error:   %.1f%% worst relative deviation\n",
		csecg.CompareHolterReports(refRep, gotRep)*100)
}
